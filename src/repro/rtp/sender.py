"""The RTC sender endpoint's transport half.

Owns the packetizer, pacer, and TWCC send history; forwards feedback
(joined into :class:`~repro.rtp.feedback.PacketResult` lists) and PLI
events to registered observers (the congestion controller and the
adaptive encoder controller).
"""

from __future__ import annotations

from typing import Callable

from ..codec.frames import EncodedFrame
from ..netsim.network import DuplexNetwork
from ..netsim.packet import Packet
from ..simcore.scheduler import Scheduler
from ..telemetry.recorder import NULL_TELEMETRY, Telemetry
from .fec import FecConfig, FecEncoder
from .feedback import FeedbackReport, PacketResult, SendHistory
from .nack import RetransmissionBuffer
from .packetizer import Packetizer
from .pacer import Pacer

FeedbackObserver = Callable[[FeedbackReport, list[PacketResult]], None]
PliObserver = Callable[[], None]


class Sender:
    """Sends encoded frames over the network and demuxes feedback."""

    def __init__(
        self,
        scheduler: Scheduler,
        network: DuplexNetwork,
        initial_target_bps: float,
        pacing_multiplier: float = 2.5,
        mtu_payload_bytes: int = 1200,
        enable_nack: bool = False,
        rtx_buffer_age: float = 1.0,
        enable_fec: bool = False,
        fec_config: FecConfig | None = None,
        flow_suffix: str = "",
        telemetry: Telemetry | None = None,
    ) -> None:
        self._scheduler = scheduler
        self._network = network
        self._telemetry = telemetry or NULL_TELEMETRY
        self.media_flow = f"media{flow_suffix}"
        self._feedback_flow = f"feedback{flow_suffix}"
        self._rtcp_flow = f"rtcp{flow_suffix}"
        self.packetizer = Packetizer(
            mtu_payload_bytes=mtu_payload_bytes, flow=self.media_flow
        )
        self.history = SendHistory()
        self.pacer = Pacer(
            scheduler,
            self._send_packet,
            initial_target_bps,
            pacing_multiplier,
        )
        self.rtx_buffer: RetransmissionBuffer | None = None
        if enable_nack:
            self.rtx_buffer = RetransmissionBuffer(rtx_buffer_age)
        self.fec: FecEncoder | None = None
        if enable_fec:
            self.fec = FecEncoder(fec_config)
        self._feedback_observers: list[FeedbackObserver] = []
        self._pli_observers: list[PliObserver] = []
        network.on_reverse(self._feedback_flow, self._on_feedback)
        network.on_reverse(self._rtcp_flow, self._on_rtcp)
        self.frames_sent = 0
        self.bytes_sent = 0
        self.nacks_received = 0

    # ------------------------------------------------------------------
    def on_feedback(self, observer: FeedbackObserver) -> None:
        """Register for (report, joined packet results) on each feedback."""
        self._feedback_observers.append(observer)

    def on_pli(self, observer: PliObserver) -> None:
        """Register for picture-loss-indication events."""
        self._pli_observers.append(observer)

    def set_target_rate(self, target_bps: float) -> None:
        """Propagate a new media target to the pacer."""
        self.pacer.set_target_rate(target_bps)

    def send_frame(self, frame: EncodedFrame) -> None:
        """Packetize and pace one encoded frame."""
        packets = self.packetizer.packetize(frame)
        # Hoisted out of the loop: both accesses route through enum
        # descriptors, measurable at per-packet rates.
        frame_type = frame.frame_type.value
        temporal_layer = frame.temporal_layer
        for packet in packets:
            packet.payload = {
                "frame_type": frame_type,
                "temporal_layer": temporal_layer,
            }
        media_count = len(packets)
        if self.fec is not None:
            packets = self.fec.protect(
                packets, self.packetizer.allocate_seq
            )
        self.pacer.enqueue(packets)
        self.frames_sent += 1
        self.bytes_sent += frame.size_bytes
        telemetry = self._telemetry
        if telemetry.enabled:
            now = self._scheduler.now
            telemetry.probe(
                "pacer.queue_delay", now, self.pacer.queue_delay()
            )
            telemetry.probe(
                "pacer.backlog_bytes", now, self.pacer.queue_bytes
            )
            telemetry.count("sender.frames")
            telemetry.count("sender.media_packets", media_count)
            if len(packets) > media_count:
                telemetry.count(
                    "fec.parity_packets", len(packets) - media_count
                )

    # ------------------------------------------------------------------
    def _send_packet(self, packet: Packet) -> None:
        if not packet.retransmission:
            self.history.on_sent(
                packet.seq, packet.send_time, packet.size_bytes
            )
            if self.rtx_buffer is not None:
                self.rtx_buffer.store(packet, packet.send_time)
        self._network.send_forward(packet)

    def _on_feedback(self, packet: Packet) -> None:
        report = packet.payload
        if not isinstance(report, FeedbackReport):
            return
        results = self.history.resolve(report)
        if self.fec is not None and results:
            lost = sum(1 for r in results if r.lost)
            self.fec.on_loss_report(lost / len(results))
        for observer in self._feedback_observers:
            observer(report, results)

    def _on_rtcp(self, packet: Packet) -> None:
        if packet.payload == "PLI":
            for observer in self._pli_observers:
                observer()
            return
        if (
            isinstance(packet.payload, tuple)
            and len(packet.payload) == 2
            and packet.payload[0] == "NACK"
            and self.rtx_buffer is not None
        ):
            seqs = list(packet.payload[1])
            self.nacks_received += 1
            self._telemetry.count("sender.nacks_received")
            clones = self.rtx_buffer.fetch(seqs, self._scheduler.now)
            if clones:
                self._telemetry.count(
                    "sender.retransmissions", len(clones)
                )
                self.pacer.enqueue_front(clones)
