"""Forward error correction (ULPFEC-style XOR parity).

The third recovery mechanism next to PLI and NACK: the sender
interleaves one parity packet per group of ``k`` media packets; the
receiver can reconstruct any *single* missing packet of a protected
group the moment the parity arrives — zero extra round trips, at the
price of constant bandwidth overhead (1/k).

Like libwebrtc, the protection rate adapts to the observed loss: no
FEC on a clean path, up to one parity per three packets under heavy
loss. Parity packets ride the media sequence space (RED-style), so
congestion control and TWCC accounting see them like any other packet.

Simulation note: a real parity packet XORs payloads; reconstructing a
packet therefore recovers its bytes *and* its RTP metadata. We model
exactly that by carrying the protected packets' metadata on the parity
packet and handing the receiver a reconstructed
:class:`~repro.netsim.packet.Packet` when exactly one of the group is
missing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..netsim.packet import Packet


@dataclass(frozen=True, slots=True)
class ProtectedMeta:
    """Metadata needed to reconstruct one protected packet."""

    seq: int
    size_bytes: int
    frame_index: int
    frame_packet_index: int
    frame_packet_count: int
    capture_time: float
    frame_type: str
    temporal_layer: int


@dataclass(frozen=True)
class FecConfig:
    """Adaptive protection schedule: (loss threshold, group size k).

    The first entry whose threshold is >= the observed loss applies;
    ``k = 0`` disables protection at that level.
    """

    schedule: tuple[tuple[float, int], ...] = (
        (0.005, 0),   # <0.5% loss: no FEC
        (0.03, 10),   # light loss: 10% overhead
        (0.08, 5),    # moderate: 20% overhead
        (1.0, 3),     # heavy: 33% overhead
    )

    def validate(self) -> None:
        """Raise :class:`ConfigError` on a malformed schedule."""
        if not self.schedule:
            raise ConfigError("FEC schedule must not be empty")
        thresholds = [t for t, _ in self.schedule]
        if thresholds != sorted(thresholds):
            raise ConfigError("FEC thresholds must be ascending")
        if thresholds[-1] < 1.0:
            raise ConfigError("FEC schedule must cover loss up to 1.0")
        if any(k < 0 for _, k in self.schedule):
            raise ConfigError("group sizes must be >= 0")

    def group_size(self, loss_fraction: float) -> int:
        """Packets per parity at the given loss level (0 = off)."""
        for threshold, k in self.schedule:
            if loss_fraction <= threshold:
                return k
        return self.schedule[-1][1]


class FecEncoder:
    """Sender side: interleaves parity packets into the media stream."""

    #: EWMA weight per feedback report (~1 s time constant at 20 Hz
    #: feedback) — per-batch loss is far too noisy to switch FEC on/off.
    LOSS_SMOOTHING = 0.05

    __slots__ = ("_config", "_loss_fraction", "parity_sent")

    def __init__(self, config: FecConfig | None = None) -> None:
        self._config = config or FecConfig()
        self._config.validate()
        self._loss_fraction = 0.0
        self.parity_sent = 0

    def on_loss_report(self, loss_fraction: float) -> None:
        """Fold one feedback batch's loss into the smoothed estimate."""
        sample = min(max(loss_fraction, 0.0), 1.0)
        self._loss_fraction += self.LOSS_SMOOTHING * (
            sample - self._loss_fraction
        )

    @property
    def smoothed_loss(self) -> float:
        """Current smoothed loss estimate."""
        return self._loss_fraction

    @property
    def current_group_size(self) -> int:
        """Current packets-per-parity (0 = FEC off)."""
        return self._config.group_size(self._loss_fraction)

    def protect(
        self, packets: list[Packet], allocate_seq
    ) -> list[Packet]:
        """Append parity packets covering groups of ``k`` media
        packets. ``allocate_seq`` hands out the next media sequence
        number (parity shares the sequence space).

        Parities go *after* the frame's media packets so wire order
        stays sequence order — the receiver's FIFO gap detection relies
        on that, and media packets were already numbered contiguously
        by the packetizer.
        """
        k = self.current_group_size
        if k == 0 or not packets:
            return packets
        parities: list[Packet] = []
        for start in range(0, len(packets), k):
            group = packets[start:start + k]
            parities.append(self._parity_for(group, allocate_seq()))
        # Each parity announces the frame's full parity range, so the
        # receiver can tell a lost parity from a lost media frame.
        for index, parity in enumerate(parities):
            parity.payload["parity_index"] = index
            parity.payload["parity_count"] = len(parities)
        return packets + parities

    def _parity_for(self, group: list[Packet], seq: int) -> Packet:
        metas = tuple(
            ProtectedMeta(
                seq=p.seq,
                size_bytes=p.size_bytes,
                frame_index=p.frame_index,
                frame_packet_index=p.frame_packet_index,
                frame_packet_count=p.frame_packet_count,
                capture_time=p.capture_time,
                frame_type=(
                    p.payload.get("frame_type", "P")
                    if isinstance(p.payload, dict) else "P"
                ),
                temporal_layer=(
                    p.payload.get("temporal_layer", 0)
                    if isinstance(p.payload, dict) else 0
                ),
            )
            for p in group
        )
        self.parity_sent += 1
        return Packet(
            # XOR parity is as large as the largest protected packet.
            size_bytes=max(p.size_bytes for p in group),
            flow=group[0].flow,
            seq=seq,
            payload={"fec": True, "protected": metas},
        )


class FecDecoder:
    """Receiver side: recovers single losses within protected groups."""

    __slots__ = ("_history", "_received", "_order", "recovered")

    def __init__(self, history: int = 512) -> None:
        if history <= 0:
            raise ConfigError("history must be positive")
        self._history = history
        self._received: set[int] = set()
        self._order: list[int] = []
        self.recovered = 0

    def on_media(self, packet: Packet) -> None:
        """Note an arriving (non-parity) media packet."""
        self._remember(packet.seq)

    def on_parity(self, packet: Packet) -> list[Packet]:
        """Process a parity packet; returns reconstructed packets
        (zero or one — XOR recovers at most a single loss)."""
        self._remember(packet.seq)
        payload = packet.payload
        if not isinstance(payload, dict) or "protected" not in payload:
            return []
        missing = [
            meta
            for meta in payload["protected"]
            if meta.seq not in self._received
        ]
        if len(missing) != 1:
            return []  # zero missing: nothing to do; >1: unrecoverable
        meta = missing[0]
        self.recovered += 1
        self._remember(meta.seq)
        recovered = Packet(
            size_bytes=meta.size_bytes,
            flow=packet.flow,
            seq=meta.seq,
            frame_index=meta.frame_index,
            frame_packet_index=meta.frame_packet_index,
            frame_packet_count=meta.frame_packet_count,
            capture_time=meta.capture_time,
            payload={
                "frame_type": meta.frame_type,
                "temporal_layer": meta.temporal_layer,
            },
        )
        recovered.arrival_time = packet.arrival_time
        return [recovered]

    def _remember(self, seq: int) -> None:
        if seq in self._received:
            return
        self._received.add(seq)
        self._order.append(seq)
        while len(self._order) > self._history:
            self._received.discard(self._order.pop(0))
