"""Receiver-side frame assembly, decodability tracking, and PLI.

The :class:`FrameAssembler` reconstructs frames from packets, detects
loss from sequence gaps (the forward path is FIFO, so a gap below the
highest seen sequence number is a confirmed loss), tracks the H.264
reference chain (a lost frame makes every following P-frame undecodable
until the next keyframe), and asks for recovery keyframes via PLI.

Latency is measured here: a frame's end-to-end latency is
``display_time - capture_time``, where display happens when the frame is
complete *and* decodable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import TransportError
from ..netsim.packet import Packet
from ..telemetry.recorder import NULL_TELEMETRY, Telemetry

#: Fixed decode latency added after the last packet arrives.
DECODE_DELAY = 0.005


@dataclass(slots=True)
class FrameRecord:
    """Receiver-side fate of one video frame.

    Attributes:
        index: frame number.
        capture_time: sender capture timestamp carried in the packets.
        packet_count: packets the frame was split into.
        received_packets: how many arrived.
        complete_time: when the last packet arrived (None if never).
        display_time: when the frame was displayed (None if frozen/lost).
        lost: a sequence gap confirmed at least one packet will not come.
        undecodable: complete but its reference chain was broken.
        frame_type: "I" or "P" (carried in packet payload).
        temporal_layer: 0 (reference) or 1 (droppable enhancement).
    """

    index: int
    capture_time: float
    packet_count: int
    frame_type: str
    temporal_layer: int = 0
    received_packets: int = 0
    positions: set[int] = field(default_factory=set)
    base_seq: int = -1
    complete_time: float | None = None
    display_time: float | None = None
    lost: bool = False
    undecodable: bool = False

    @property
    def end_seq(self) -> int:
        """Highest sequence number the frame occupies."""
        return self.base_seq + self.packet_count - 1

    def covers_seq(self, seq: int) -> bool:
        """Whether ``seq`` belongs to this frame's packet range."""
        return self.base_seq <= seq <= self.end_seq

    @property
    def displayed(self) -> bool:
        """Whether the frame made it to the screen."""
        return self.display_time is not None

    def latency(self) -> float | None:
        """Capture→display latency, or None if not displayed."""
        if self.display_time is None:
            return None
        return self.display_time - self.capture_time


class FrameAssembler:
    """Reassembles frames and maintains the decode reference chain."""

    __slots__ = (
        "_playout",
        "_telemetry",
        "_frames",
        "_open",
        "_highest_seq",
        "_chain_intact",
        "_send_pli",
        "_pli_min_interval",
        "_last_pli_time",
        "_received_seqs",
        "_gap_scan_floor",
        "pli_sent",
    )

    def __init__(
        self,
        send_pli: Callable[[], None] | None = None,
        pli_min_interval: float = 0.3,
        playout=None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._playout = playout
        self._telemetry = telemetry or NULL_TELEMETRY
        self._frames: dict[int, FrameRecord] = {}
        # Incomplete, not-yet-lost records only: the per-packet loss scan
        # walks this instead of every frame ever seen.
        self._open: dict[int, FrameRecord] = {}
        self._highest_seq = -1
        self._chain_intact = True
        self._send_pli = send_pli
        self._pli_min_interval = pli_min_interval
        self._last_pli_time = float("-inf")
        self._received_seqs: set[int] = set()
        self._gap_scan_floor = 0
        self.pli_sent = 0

    # ------------------------------------------------------------------
    @property
    def chain_intact(self) -> bool:
        """True while every reference the next P-frame needs is decoded."""
        return self._chain_intact

    def frames(self) -> list[FrameRecord]:
        """All frame records, in frame-index order."""
        return [self._frames[i] for i in sorted(self._frames)]

    def note_seq(self, seq: int, now: float) -> None:
        """Register a non-media sequence number (FEC parity) so gap
        detection doesn't mistake it for a lost frame."""
        self._received_seqs.add(seq)
        if seq > self._highest_seq:
            self._highest_seq = seq
        self._detect_losses(now)

    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet, now: float) -> FrameRecord | None:
        """Feed one arriving media packet.

        Returns the frame record if this packet *displayed* a frame,
        else None.
        """
        if packet.frame_index < 0:
            raise TransportError("media packet without a frame index")
        seq = packet.seq
        if seq == self._highest_seq + 1 and self._chain_intact:
            # Exactly-in-order packet with an intact chain: when at most
            # this packet's own frame is open, _detect_losses is provably
            # a no-op (same predicate the insert_many fast path gates
            # on), so only its scan-floor bookkeeping applies.
            index = packet.frame_index
            open_frames = self._open
            record = self._frames.get(index)
            if record is None:
                if not open_frames:
                    payload = packet.payload
                    frame_type = "P"
                    layer = 0
                    if isinstance(payload, dict):
                        frame_type = payload.get("frame_type", "P")
                        layer = payload.get("temporal_layer", 0)
                    record = FrameRecord(
                        index=index,
                        capture_time=packet.capture_time,
                        packet_count=packet.frame_packet_count,
                        frame_type=frame_type,
                        temporal_layer=layer,
                        base_seq=seq - packet.frame_packet_index,
                    )
                    self._frames[index] = record
                    open_frames[index] = record
                # else: an older frame is still incomplete — the next
                # packet may confirm its loss; slow path.
            elif len(open_frames) != 1 or index not in open_frames:
                record = None  # out-of-shape stream: slow path
            if record is not None:
                position = packet.frame_packet_index
                if position in record.positions:
                    return None  # duplicate: scalar path is a no-op too
                record.positions.add(position)
                record.received_packets += 1
                self._received_seqs.add(seq)
                self._highest_seq = seq
                self._gap_scan_floor = seq + 1
                if record.received_packets == record.packet_count:
                    record.complete_time = now
                    del open_frames[index]
                    return self._try_display(record, now)
                return None
        record = self._frames.get(packet.frame_index)
        if record is None:
            frame_type = "P"
            layer = 0
            if isinstance(packet.payload, dict):
                frame_type = packet.payload.get("frame_type", "P")
                layer = packet.payload.get("temporal_layer", 0)
            record = FrameRecord(
                index=packet.frame_index,
                capture_time=packet.capture_time,
                packet_count=packet.frame_packet_count,
                frame_type=frame_type,
                temporal_layer=layer,
                base_seq=packet.seq - packet.frame_packet_index,
            )
            self._frames[packet.frame_index] = record
            self._open[packet.frame_index] = record
        if packet.frame_packet_index in record.positions:
            return None  # duplicate
        record.positions.add(packet.frame_packet_index)
        record.received_packets += 1
        self._received_seqs.add(packet.seq)
        if packet.seq > self._highest_seq:
            self._highest_seq = packet.seq

        self._detect_losses(now)

        if record.received_packets == record.packet_count and not record.lost:
            record.complete_time = now
            self._open.pop(record.index, None)
            return self._try_display(record, now)
        return None

    def insert_many(self, times, payloads, lo: int, hi: int, clock) -> int:
        """Insert a contiguous arrival run (bulk fast lane).

        Observationally identical to calling :meth:`on_packet` per
        packet in order. The fast path applies when a packet is exactly
        in order (``seq == highest + 1``), the reference chain is
        intact, and no *other* frame is still incomplete — then
        :meth:`_detect_losses` is provably a no-op and is skipped, with
        only its scan-floor bookkeeping applied. Everything else falls
        back to the exact scalar insert.

        Returns how many packets were consumed. The run is split (the
        method returns early) immediately after any packet whose scalar
        fallback emitted a PLI — a control event is then in flight and
        the scheduler must re-merge — and *before* any FEC parity
        packet, which belongs to the receiver's parity path (``0`` is
        returned if the first packet is parity).
        """
        frames = self._frames
        open_frames = self._open
        received = self._received_seqs
        i = lo
        while i < hi:
            packet = payloads[i]
            payload = packet.payload
            is_dict = isinstance(payload, dict)
            if is_dict and payload.get("fec"):
                break  # parity: the caller owns the scalar parity path
            now = times[i]
            clock._now = now
            seq = packet.seq
            if seq == self._highest_seq + 1 and self._chain_intact:
                index = packet.frame_index
                record = frames.get(index)
                if record is None:
                    if not open_frames:
                        frame_type = "P"
                        layer = 0
                        if is_dict:
                            frame_type = payload.get("frame_type", "P")
                            layer = payload.get("temporal_layer", 0)
                        record = FrameRecord(
                            index=index,
                            capture_time=packet.capture_time,
                            packet_count=packet.frame_packet_count,
                            frame_type=frame_type,
                            temporal_layer=layer,
                            base_seq=seq - packet.frame_packet_index,
                        )
                        frames[index] = record
                        open_frames[index] = record
                    # else: an older frame is still incomplete — the
                    # next packet may confirm its loss; slow path.
                elif len(open_frames) != 1 or index not in open_frames:
                    record = None  # out-of-shape stream: slow path
                if record is not None:
                    position = packet.frame_packet_index
                    if position not in record.positions:
                        record.positions.add(position)
                        record.received_packets += 1
                        received.add(seq)
                        self._highest_seq = seq
                        # _detect_losses is a no-op here (the only open
                        # frame extends past seq, and the gap scan
                        # covers exactly this received seq); apply its
                        # floor update directly.
                        self._gap_scan_floor = seq + 1
                        if record.received_packets == record.packet_count:
                            record.complete_time = now
                            del open_frames[index]
                            # Chain intact, so display is pure (no PLI).
                            self._try_display(record, now)
                        i += 1
                        continue
            # Slow path: the exact scalar insert; split the run after it
            # if a PLI went out (scheduling side effect).
            pli_before = self.pli_sent
            self.on_packet(packet, now)
            i += 1
            if self.pli_sent != pli_before:
                break
        return i - lo

    # ------------------------------------------------------------------
    def _try_display(self, record: FrameRecord, now: float) -> FrameRecord | None:
        if record.frame_type == "I":
            self._chain_intact = True
        if not self._chain_intact:
            record.undecodable = True
            self._request_pli(now)
            return None
        if self._playout is not None:
            record.display_time = (
                self._playout.schedule(record.capture_time, now)
                + DECODE_DELAY
            )
        else:
            record.display_time = now + DECODE_DELAY
        telemetry = self._telemetry
        if telemetry.enabled:
            telemetry.probe(
                "rtp.playout_delay", now, record.display_time - now
            )
            telemetry.probe(
                "rtp.frame_latency",
                now,
                record.display_time - record.capture_time,
            )
            telemetry.count("rtp.frames_displayed")
        return record

    def _detect_losses(self, now: float) -> None:
        """A frame whose sequence range lies below the highest sequence
        seen, yet is incomplete, has confirmed losses (FIFO path).

        Losing a T1 (non-reference) frame does not break the chain;
        losing a T0 frame — or a sequence belonging to no known frame,
        i.e. a frame lost in its entirety — does.
        """
        highest = self._highest_seq
        newly_lost = None
        for record in self._open.values():
            if highest > record.end_seq:
                record.lost = True
                if newly_lost is None:
                    newly_lost = [record.index]
                else:
                    newly_lost.append(record.index)
                if record.temporal_layer == 0:
                    self._chain_intact = False
                    self._request_pli(now)
        if newly_lost is not None:
            for index in newly_lost:
                del self._open[index]
        # Sequences below the highest that nobody claims: an entire
        # frame vanished, reference status unknown — assume broken.
        for seq in range(self._gap_scan_floor, highest + 1):
            if seq in self._received_seqs:
                continue
            if any(r.covers_seq(seq) for r in self._frames.values()):
                continue
            self._chain_intact = False
            self._request_pli(now)
        self._gap_scan_floor = highest + 1

    def _request_pli(self, now: float) -> None:
        if self._send_pli is None:
            return
        if now - self._last_pli_time < self._pli_min_interval:
            return
        self._last_pli_time = now
        self.pli_sent += 1
        self._send_pli()
