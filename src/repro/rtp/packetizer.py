"""RTP packetization of encoded frames.

A frame larger than the MTU payload budget is split into several packets;
every packet carries enough framing metadata (frame index, position,
count) for the receiver to reassemble and to detect loss precisely.
"""

from __future__ import annotations

from ..codec.frames import EncodedFrame
from ..errors import ConfigError
from ..netsim.packet import Packet
from ..units import DEFAULT_MTU

#: RTP(12) + UDP(8) + IPv4(20) header bytes added to every packet.
HEADER_OVERHEAD_BYTES = 40


class Packetizer:
    """Splits frames into MTU-sized packets with monotone sequence
    numbers."""

    __slots__ = ("_mtu", "_overhead", "_flow", "_next_seq")

    def __init__(
        self,
        mtu_payload_bytes: int = DEFAULT_MTU,
        overhead_bytes: int = HEADER_OVERHEAD_BYTES,
        flow: str = "media",
    ) -> None:
        if mtu_payload_bytes <= 0 or overhead_bytes < 0:
            raise ConfigError("mtu must be positive and overhead >= 0")
        self._mtu = mtu_payload_bytes
        self._overhead = overhead_bytes
        self._flow = flow
        self._next_seq = 0

    @property
    def next_seq(self) -> int:
        """Sequence number the next packet will get."""
        return self._next_seq

    def allocate_seq(self) -> int:
        """Hand out one sequence number (FEC parity shares the media
        sequence space)."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def packetize(self, frame: EncodedFrame) -> list[Packet]:
        """Produce the packets carrying ``frame`` in transmit order."""
        payload = frame.size_bytes
        count = max(1, -(-payload // self._mtu))  # ceil division
        packets: list[Packet] = []
        remaining = payload
        for position in range(count):
            chunk = min(self._mtu, remaining)
            remaining -= chunk
            packet = Packet(
                size_bytes=chunk + self._overhead,
                flow=self._flow,
                seq=self._next_seq,
                frame_index=frame.index,
                frame_packet_index=position,
                frame_packet_count=count,
                capture_time=frame.capture_time,
            )
            self._next_seq += 1
            packets.append(packet)
        return packets
