"""RTP-like media transport: packetization, pacing, feedback, assembly,
NACK retransmission, and the audio side-flow."""

from .audio import AudioStream
from .fec import FecConfig, FecDecoder, FecEncoder
from .feedback import (
    ArrivalRecord,
    FeedbackCollector,
    FeedbackReport,
    PacketResult,
    SendHistory,
)
from .jitterbuffer import DECODE_DELAY, FrameAssembler, FrameRecord
from .nack import NackConfig, NackFrameAssembler, RetransmissionBuffer
from .packetizer import HEADER_OVERHEAD_BYTES, Packetizer
from .pacer import Pacer
from .playout import PlayoutBuffer, PlayoutConfig
from .receiver import Receiver
from .sender import Sender

__all__ = [
    "ArrivalRecord",
    "AudioStream",
    "DECODE_DELAY",
    "FecConfig",
    "FecDecoder",
    "FecEncoder",
    "FeedbackCollector",
    "FeedbackReport",
    "FrameAssembler",
    "FrameRecord",
    "HEADER_OVERHEAD_BYTES",
    "NackConfig",
    "NackFrameAssembler",
    "PacketResult",
    "Pacer",
    "Packetizer",
    "PlayoutBuffer",
    "PlayoutConfig",
    "Receiver",
    "RetransmissionBuffer",
    "SendHistory",
    "Sender",
]
