"""Transport-wide congestion-control (TWCC-like) feedback.

The receiver batches per-packet arrival records and ships them back on
the reverse path at a fixed interval (50 ms by default, libwebrtc's
send interval). The sender joins them with its send-time history to
produce :class:`PacketResult` records — the input to congestion control
and to the adaptive drop detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple


class ArrivalRecord(NamedTuple):
    """One received media packet, as reported by the receiver.

    A NamedTuple rather than a frozen dataclass: both are immutable
    value records, but the tuple constructor skips the per-field
    ``object.__setattr__`` calls — measurable at one record per
    received packet.
    """

    seq: int
    arrival_time: float
    size_bytes: int


@dataclass(frozen=True, slots=True)
class FeedbackReport:
    """A TWCC-like feedback batch.

    Attributes:
        created_at: receiver clock when the report was assembled.
        arrivals: arrival records since the previous report (seq order).
        highest_seq: highest sequence number seen so far.
        cumulative_received: total media packets received so far.
    """

    created_at: float
    arrivals: tuple[ArrivalRecord, ...]
    highest_seq: int
    cumulative_received: int

    def wire_size_bytes(self) -> int:
        """Approximate RTCP size: fixed header + 2 bytes per status +
        arrival deltas."""
        return 36 + 4 * len(self.arrivals)


class PacketResult(NamedTuple):
    """Sender-side join of send history with a feedback arrival record.

    ``arrival_time < 0`` denotes a packet reported lost (a gap in the
    sequence space that a later feedback confirmed). A NamedTuple for
    the same constructor-cost reason as :class:`ArrivalRecord` — one of
    these exists per acked packet.
    """

    seq: int
    send_time: float
    arrival_time: float
    size_bytes: int

    @property
    def lost(self) -> bool:
        """Whether the packet never arrived."""
        return self.arrival_time < 0


@dataclass(slots=True)
class FeedbackCollector:
    """Receiver-side accumulator producing :class:`FeedbackReport`."""

    _pending: list[ArrivalRecord] = field(default_factory=list)
    _highest_seq: int = -1
    _received: int = 0

    def on_packet(self, seq: int, arrival_time: float, size_bytes: int) -> None:
        """Record one arriving media packet."""
        self._pending.append(ArrivalRecord(seq, arrival_time, size_bytes))
        if seq > self._highest_seq:
            self._highest_seq = seq
        self._received += 1

    def on_packets(self, times, payloads, lo: int, hi: int) -> None:
        """Record a contiguous arrival run (bulk fast lane).

        State-identical to calling :meth:`on_packet` for each packet in
        order — the records land in the same append order, and the
        running max/count updates commute with batching.
        """
        pending = self._pending
        append = pending.append
        highest = self._highest_seq
        for i in range(lo, hi):
            packet = payloads[i]
            seq = packet.seq
            append(ArrivalRecord(seq, times[i], packet.size_bytes))
            if seq > highest:
                highest = seq
        self._highest_seq = highest
        self._received += hi - lo

    def build_report(self, now: float) -> FeedbackReport | None:
        """Flush pending arrivals into a report (``None`` if empty)."""
        if not self._pending:
            return None
        report = FeedbackReport(
            created_at=now,
            arrivals=tuple(
                sorted(self._pending, key=lambda record: record.seq)
            ),
            highest_seq=self._highest_seq,
            cumulative_received=self._received,
        )
        self._pending.clear()
        return report


class SendHistory:
    """Sender-side record of in-flight packets for the TWCC join.

    Entries are evicted once acknowledged or once ``max_age`` older than
    the newest send, at which point unacked entries are reported lost.
    """

    __slots__ = ("_entries", "_max_age", "_newest_send")

    def __init__(self, max_age: float = 2.0) -> None:
        self._entries: dict[int, tuple[float, int]] = {}
        self._max_age = max_age
        self._newest_send = 0.0

    def on_sent(self, seq: int, send_time: float, size_bytes: int) -> None:
        """Record a packet leaving the pacer."""
        self._entries[seq] = (send_time, size_bytes)
        if send_time > self._newest_send:
            self._newest_send = send_time

    def resolve(self, report: FeedbackReport) -> list[PacketResult]:
        """Join a feedback report against the history.

        Returns results for every acked packet, plus loss records for
        unacked packets older than every packet acked in this report
        (the TWCC rule: a gap is a loss once something later arrived).
        """
        results: list[PacketResult] = []
        append = results.append
        entries_pop = self._entries.pop
        acked_seqs = []
        for record in report.arrivals:
            seq = record.seq
            entry = entries_pop(seq, None)
            if entry is None:
                continue  # duplicate ack or evicted
            send_time, size_bytes = entry
            append(
                PacketResult(seq, send_time, record.arrival_time, size_bytes)
            )
            acked_seqs.append(seq)
        if acked_seqs:
            newest_acked = max(acked_seqs)
            lost = [
                seq for seq in self._entries if seq < newest_acked
            ]
            for seq in sorted(lost):
                send_time, size_bytes = entries_pop(seq)
                append(PacketResult(seq, send_time, -1.0, size_bytes))
        results.sort(key=lambda r: r.seq)
        return results

    def in_flight(self) -> int:
        """Packets sent but not yet resolved."""
        return len(self._entries)
