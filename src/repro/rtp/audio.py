"""Audio stream: a constant small-packet flow sharing the bottleneck.

Real calls carry Opus audio (one ~60–100 B packet every 20 ms) next to
the video. Audio is not congestion-controlled — its bitrate is tiny and
fixed — but it *suffers* the same bottleneck queue the video builds, so
audio latency is a second, very audible casualty of slow encoder
adaptation. The audio-impact benchmark measures exactly that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..netsim.network import DuplexNetwork
from ..netsim.packet import Packet
from ..simcore.process import PeriodicProcess
from ..simcore.scheduler import Scheduler

#: Opus-ish defaults: 24 kbps at one packet per 20 ms.
DEFAULT_FRAME_INTERVAL = 0.020
DEFAULT_PACKET_BYTES = 100  # 60 B payload + RTP/UDP/IP overhead


@dataclass
class AudioStats:
    """Receiver-side audio measurements."""

    sent: int = 0
    received: int = 0
    latencies: list[tuple[float, float]] = field(default_factory=list)

    @property
    def loss_fraction(self) -> float:
        """Fraction of audio packets that never arrived."""
        if self.sent == 0:
            return 0.0
        return 1.0 - self.received / self.sent


class AudioStream:
    """Sender + receiver bookkeeping for the audio flow."""

    def __init__(
        self,
        scheduler: Scheduler,
        network: DuplexNetwork,
        frame_interval: float = DEFAULT_FRAME_INTERVAL,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        stop_at: float | None = None,
    ) -> None:
        if frame_interval <= 0 or packet_bytes <= 0:
            raise ConfigError("audio interval and size must be positive")
        self._scheduler = scheduler
        self._network = network
        self._packet_bytes = packet_bytes
        self._stop_at = stop_at
        self._seq = itertools.count()
        self.stats = AudioStats()
        network.on_forward("audio", self._on_audio)
        self._process = PeriodicProcess(
            scheduler, frame_interval, self._emit
        )

    def stop(self) -> None:
        """Stop emitting audio packets."""
        self._process.stop()

    # ------------------------------------------------------------------
    def _emit(self, _tick: int) -> None:
        now = self._scheduler.now
        if self._stop_at is not None and now >= self._stop_at:
            self._process.stop()
            return
        packet = Packet(
            size_bytes=self._packet_bytes,
            flow="audio",
            seq=next(self._seq),
        )
        packet.send_time = now
        self._network.send_forward(packet)
        self.stats.sent += 1

    def _on_audio(self, packet: Packet) -> None:
        self.stats.received += 1
        self.stats.latencies.append(
            (packet.send_time, packet.arrival_time - packet.send_time)
        )
