"""Adaptive playout (dejitter) buffer.

Real receivers do not display frames the instant they complete: they
schedule display at ``capture_time + target_delay``, where the target
delay adapts to the observed network-delay distribution. This trades a
bounded, *smooth* latency for jitter absorption — frames come out at a
steady cadence even when they arrive in bursts.

Off by default (the paper's latency metric is arrival-driven);
enabling it (``SessionConfig.enable_playout``) lets experiments measure
the smoothness/latency trade and how much smaller the adaptive
controller's playout target can be.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class PlayoutConfig:
    """Dejitter tuning.

    Attributes:
        min_delay / max_delay: clamp on the playout target (s).
        percentile: delay percentile the target tracks.
        safety_factor: multiplier on the tracked percentile.
        window: delay samples considered.
        smoothing: EWMA weight for target updates (per frame).
    """

    min_delay: float = 0.04
    max_delay: float = 3.0
    percentile: float = 95.0
    safety_factor: float = 1.1
    window: int = 120
    smoothing: float = 0.05

    def validate(self) -> None:
        """Raise :class:`ConfigError` on bad values."""
        if not 0 < self.min_delay <= self.max_delay:
            raise ConfigError("need 0 < min_delay <= max_delay")
        if not 0 < self.percentile <= 100:
            raise ConfigError("percentile must be in (0, 100]")
        if self.safety_factor < 1.0:
            raise ConfigError("safety_factor must be >= 1")
        if self.window < 2:
            raise ConfigError("window must be >= 2")
        if not 0 < self.smoothing <= 1:
            raise ConfigError("smoothing must be in (0, 1]")


class PlayoutBuffer:
    """Schedules frame display times at an adaptive target delay."""

    def __init__(self, config: PlayoutConfig | None = None) -> None:
        self._config = config or PlayoutConfig()
        self._config.validate()
        self._delays: deque[float] = deque(maxlen=self._config.window)
        self._target = self._config.min_delay
        self._last_display = float("-inf")
        self.late_frames = 0

    @property
    def target_delay(self) -> float:
        """Current playout target (capture → display)."""
        return self._target

    def schedule(self, capture_time: float, complete_time: float) -> float:
        """Display time for a frame that completed at ``complete_time``.

        Frames arriving within the target display exactly at
        ``capture + target`` (smooth); frames arriving later display on
        arrival (a late frame — also counted).
        """
        cfg = self._config
        delay = complete_time - capture_time
        self._delays.append(delay)
        if len(self._delays) >= 5:
            observed = float(
                np.percentile(list(self._delays), cfg.percentile)
            )
            goal = min(
                max(observed * cfg.safety_factor, cfg.min_delay),
                cfg.max_delay,
            )
            self._target += cfg.smoothing * (goal - self._target)

        display = max(complete_time, capture_time + self._target)
        if complete_time > capture_time + self._target:
            self.late_frames += 1
        # Display order must be monotone (a real renderer cannot go
        # back in time).
        display = max(display, self._last_display)
        self._last_display = display
        return display
