"""libwebrtc-style packet pacer.

The pacer smooths each frame's burst of packets onto the wire at a
configured pacing rate (a multiple of the media target bitrate, 2.5× by
default, as in libwebrtc). Two reasons it exists here:

1. realism — bottleneck queueing depends on the sending process;
2. its queue is a *sender-local congestion signal*: when the congestion
   controller's target lags the true capacity, packets pile up in the
   pacer too, and the adaptive controller reads
   :meth:`Pacer.queue_delay` as one of its drop-detection inputs.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable

from .. import _native
from ..errors import ConfigError
from ..netsim.packet import Packet
from ..simcore.scheduler import Scheduler

#: Compiled twin of the lane release body (``repro._native``); rebound
#: by :func:`repro._native.configure` for runtime leg toggling.
_native_release = None


def _apply_native(mod) -> None:
    global _native_release
    _native_release = getattr(mod, "pacer_release", None) if mod else None


_native.register(_apply_native)


class Pacer:
    """Leaky-bucket pacer releasing packets at the pacing rate."""

    __slots__ = (
        "_scheduler",
        "_send",
        "_multiplier",
        "_rate_bps",
        "_queue",
        "_queue_bytes",
        "_sending",
        "_lane",
        "sent_packets",
        "sent_bytes",
    )

    def __init__(
        self,
        scheduler: Scheduler,
        send: Callable[[Packet], None],
        pacing_rate_bps: float,
        pacing_multiplier: float = 2.5,
    ) -> None:
        if pacing_rate_bps <= 0:
            raise ConfigError("pacing rate must be positive")
        if pacing_multiplier < 1.0:
            raise ConfigError("pacing multiplier must be >= 1")
        self._scheduler = scheduler
        self._send = send
        self._multiplier = pacing_multiplier
        self._rate_bps = pacing_rate_bps * pacing_multiplier
        self._queue: deque[Packet] = deque()
        self._queue_bytes = 0
        self._sending = False
        self.sent_packets = 0
        self.sent_bytes = 0
        # Under the batched kernel the release chain rides an event
        # lane: each release appends the next release time — computed
        # with the identical expression as the serial ``call_at`` path,
        # at the same moment (so rate changes take effect at exactly the
        # same releases) — but pays a list append instead of an Event
        # allocation plus two heap sifts.
        self._lane = None
        if getattr(scheduler, "supports_batching", False):
            # Fire is chosen at construction: the compiled twin when the
            # native leg is active (partial-bound, called as
            # fire(payload) → release(self, payload)), else the Python
            # wrapper. Leg-correct because configure() runs before
            # session construction.
            release = _native_release
            fire = (
                self._lane_release
                if release is None
                else partial(release, self)
            )
            self._lane = scheduler.new_lane(fire, "pacer")

    # ------------------------------------------------------------------
    @property
    def pacing_rate_bps(self) -> float:
        """Current wire release rate (already multiplied)."""
        return self._rate_bps

    @property
    def queue_bytes(self) -> int:
        """Bytes waiting in the pacer."""
        return self._queue_bytes

    @property
    def queue_packets(self) -> int:
        """Packets waiting in the pacer."""
        return len(self._queue)

    def queue_delay(self) -> float:
        """Seconds needed to drain the current pacer queue."""
        return self._queue_bytes * 8 / self._rate_bps

    def set_target_rate(self, target_bps: float) -> None:
        """Update pacing from a new media target (multiplier applied)."""
        if target_bps <= 0:
            raise ConfigError("target must be positive")
        self._rate_bps = target_bps * self._multiplier

    # ------------------------------------------------------------------
    def enqueue(self, packets: list[Packet]) -> None:
        """Add packets (one frame's worth, typically) to the pacer."""
        for packet in packets:
            self._queue.append(packet)
            self._queue_bytes += packet.size_bytes
        self._wake()

    def enqueue_front(self, packets: list[Packet]) -> None:
        """Add packets at the *head* of the queue (retransmissions are
        latency-critical and jump the line, as in libwebrtc)."""
        for packet in reversed(packets):
            self._queue.appendleft(packet)
            self._queue_bytes += packet.size_bytes
        self._wake()

    def _wake(self) -> None:
        if not self._sending and self._queue:
            self._sending = True
            if self._lane is not None:
                self._lane.append(self._scheduler.clock._now)
            else:
                self._scheduler.call_in(0.0, self._release_next)

    def _lane_release(self, _payload: object) -> None:
        self._release_next()

    def _release_next(self) -> None:
        if not self._queue:
            self._sending = False
            return
        packet = self._queue.popleft()
        size = packet.size_bytes
        self._queue_bytes -= size
        scheduler = self._scheduler
        now = scheduler.clock._now
        packet.send_time = now
        self._send(packet)
        self.sent_packets += 1
        self.sent_bytes += size
        gap = size * 8 / self._rate_bps
        if self._lane is not None:
            self._lane.append(now + gap)
        else:
            scheduler.call_at(now + gap, self._release_next)
