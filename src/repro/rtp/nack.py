"""NACK-based retransmission (RFC 4585 generic NACK, functionally).

With NACK enabled the receiver does not give up on a sequence gap
immediately: it asks the sender to retransmit, holds back the display
of later frames until the gap is resolved (a real jitter buffer's
behaviour), and only declares the loss — breaking the reference chain
and requesting a PLI keyframe — after the retries are exhausted.

Sender side, :class:`RetransmissionBuffer` keeps recently sent packets
so NACKed sequences can be re-paced (at the head of the pacer queue).

The trade-off this models, measurable in the benchmarks: NACK converts
freezes into *latency* (a recovered frame displays one extra RTT late),
while PLI converts them into *quality* loss (a recovery keyframe costs
bits). Which is better depends on the loss pattern — exactly why real
RTC stacks implement both.
"""

from __future__ import annotations

import copy
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigError, TransportError
from ..netsim.packet import Packet
from ..telemetry.recorder import NULL_TELEMETRY, Telemetry
from .jitterbuffer import DECODE_DELAY, FrameRecord


@dataclass(frozen=True)
class NackConfig:
    """Retransmission tuning.

    Attributes:
        reorder_grace: how long a gap may stand before the first NACK
            (absorbs reordering; our links are FIFO so this can be small).
        retry_interval: spacing between retries for the same sequence
            (≈ RTT + jitter-buffer slack).
        max_retries: NACKs sent per missing sequence before giving up.
        buffer_age: how long the sender keeps packets for retransmission.
    """

    reorder_grace: float = 0.01
    retry_interval: float = 0.08
    max_retries: int = 3
    buffer_age: float = 1.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on bad values."""
        if self.reorder_grace < 0 or self.retry_interval <= 0:
            raise ConfigError("NACK timings must be positive")
        if self.max_retries < 1:
            raise ConfigError("max_retries must be >= 1")
        if self.buffer_age <= 0:
            raise ConfigError("buffer_age must be positive")


@dataclass(slots=True)
class _MissingSeq:
    first_seen: float
    nacks_sent: int = 0
    next_nack_at: float = 0.0
    lost: bool = False


class RetransmissionBuffer:
    """Sender-side store of recently sent packets, by sequence."""

    __slots__ = ("_max_age", "_packets", "retransmitted")

    def __init__(self, max_age: float = 1.0) -> None:
        if max_age <= 0:
            raise ConfigError("max_age must be positive")
        self._max_age = max_age
        self._packets: dict[int, tuple[float, Packet]] = {}
        self.retransmitted = 0

    def store(self, packet: Packet, now: float) -> None:
        """Remember a sent packet (a private copy)."""
        self._packets[packet.seq] = (now, copy.copy(packet))
        self._evict(now)

    def fetch(self, seqs: list[int], now: float) -> list[Packet]:
        """Copies of the requested packets still in the buffer."""
        self._evict(now)
        out = []
        for seq in seqs:
            entry = self._packets.get(seq)
            if entry is None:
                continue
            clone = copy.copy(entry[1])
            clone.arrival_time = -1.0
            clone.retransmission = True
            out.append(clone)
        self.retransmitted += len(out)
        return out

    def __len__(self) -> int:
        return len(self._packets)

    def _evict(self, now: float) -> None:
        stale = [
            seq
            for seq, (stored_at, _) in self._packets.items()
            if stored_at < now - self._max_age
        ]
        for seq in stale:
            del self._packets[seq]


class NackFrameAssembler:
    """Frame reassembly with retransmission-aware loss handling.

    Differences from the plain :class:`FrameAssembler`:

    * a sequence gap is *suspect*, not lost — NACKs go out via
      ``send_nack`` and later frames wait behind a display barrier;
    * only after ``max_retries`` unanswered NACKs is the gap declared
      lost, breaking the chain and triggering PLI.
    """

    __slots__ = (
        "_playout",
        "_telemetry",
        "_config",
        "_send_nack",
        "_send_pli",
        "_pli_min_interval",
        "_last_pli_time",
        "_frames",
        "_order",
        "_scan_start",
        "_received_seqs",
        "_missing",
        "_highest_seq",
        "_chain_intact",
        "_last_displayed_index",
        "pli_sent",
        "nacks_sent",
        "recovered_seqs",
        "stale_frames",
    )

    def __init__(
        self,
        send_nack: Callable[[list[int]], None],
        send_pli: Callable[[], None] | None = None,
        config: NackConfig | None = None,
        pli_min_interval: float = 0.3,
        playout=None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._playout = playout
        self._telemetry = telemetry or NULL_TELEMETRY
        self._config = config or NackConfig()
        self._config.validate()
        self._send_nack = send_nack
        self._send_pli = send_pli
        self._pli_min_interval = pli_min_interval
        self._last_pli_time = float("-inf")
        self._frames: dict[int, FrameRecord] = {}
        # Frame indices in sorted order plus a scan floor: the display
        # sweep resumes after the settled prefix (displayed, discarded,
        # or lost frames never change state) instead of re-sorting and
        # re-walking every frame on every packet.
        self._order: list[int] = []
        self._scan_start = 0
        self._received_seqs: set[int] = set()
        self._missing: dict[int, _MissingSeq] = {}
        self._highest_seq = -1
        self._chain_intact = True
        self._last_displayed_index = -1
        self.pli_sent = 0
        self.nacks_sent = 0
        self.recovered_seqs = 0
        self.stale_frames = 0

    # ------------------------------------------------------------------
    @property
    def chain_intact(self) -> bool:
        """Whether the next P-frame's references are all decoded."""
        return self._chain_intact

    def frames(self) -> list[FrameRecord]:
        """All frame records in index order."""
        return [self._frames[i] for i in sorted(self._frames)]

    def missing_count(self) -> int:
        """Unresolved sequence gaps right now."""
        return sum(1 for m in self._missing.values() if not m.lost)

    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet, now: float) -> list[FrameRecord]:
        """Feed one arriving packet; returns frames displayed *now*."""
        if packet.frame_index < 0:
            raise TransportError("media packet without a frame index")
        if packet.seq in self._received_seqs:
            return []  # duplicate (original + retransmission both landed)
        self._received_seqs.add(packet.seq)

        if packet.seq in self._missing:
            if not self._missing[packet.seq].lost:
                self.recovered_seqs += 1
            del self._missing[packet.seq]
        if packet.seq > self._highest_seq:
            for gap_seq in range(self._highest_seq + 1, packet.seq):
                if gap_seq not in self._received_seqs:
                    self._missing[gap_seq] = _MissingSeq(
                        first_seen=now,
                        next_nack_at=now + self._config.reorder_grace,
                    )
            self._highest_seq = packet.seq

        record = self._record_for(packet)
        if packet.frame_packet_index not in record.positions:
            record.positions.add(packet.frame_packet_index)
            record.received_packets += 1
        if (
            record.received_packets == record.packet_count
            and record.complete_time is None
        ):
            record.complete_time = now
        return self._advance_display(now)

    def note_seq(self, seq: int, now: float) -> None:
        """Register a non-media sequence number (FEC parity): it fills
        its slot in the sequence space without carrying a frame."""
        if seq in self._received_seqs:
            return
        self._received_seqs.add(seq)
        if seq in self._missing:
            if not self._missing[seq].lost:
                self.recovered_seqs += 1
            del self._missing[seq]
        if seq > self._highest_seq:
            for gap_seq in range(self._highest_seq + 1, seq):
                if gap_seq not in self._received_seqs:
                    self._missing[gap_seq] = _MissingSeq(
                        first_seen=now,
                        next_nack_at=now + self._config.reorder_grace,
                    )
            self._highest_seq = seq
        self._advance_display(now)

    def poll(self, now: float) -> list[int]:
        """Periodic maintenance: returns seqs to NACK; finalizes losses
        and may release display-blocked frames."""
        to_nack: list[int] = []
        newly_lost: list[int] = []
        for seq, missing in self._missing.items():
            if missing.lost:
                continue
            if missing.nacks_sent >= self._config.max_retries:
                if now >= missing.next_nack_at:
                    missing.lost = True
                    newly_lost.append(seq)
                continue
            if now >= missing.next_nack_at:
                to_nack.append(seq)
                missing.nacks_sent += 1
                missing.next_nack_at = now + self._config.retry_interval
        if to_nack:
            self.nacks_sent += len(to_nack)
            self._telemetry.count("rtp.nacks_sent", len(to_nack))
            self._send_nack(sorted(to_nack))
        if newly_lost:
            self._on_losses_confirmed(now, newly_lost)
        displayed = self._advance_display(now)
        # poll() callers only need the NACK list; displayed frames are
        # already recorded on their FrameRecord.
        del displayed
        return sorted(to_nack)

    # ------------------------------------------------------------------
    def _record_for(self, packet: Packet) -> FrameRecord:
        record = self._frames.get(packet.frame_index)
        if record is None:
            frame_type = "P"
            layer = 0
            if isinstance(packet.payload, dict):
                frame_type = packet.payload.get("frame_type", "P")
                layer = packet.payload.get("temporal_layer", 0)
            record = FrameRecord(
                index=packet.frame_index,
                capture_time=packet.capture_time,
                packet_count=packet.frame_packet_count,
                frame_type=frame_type,
                temporal_layer=layer,
                base_seq=packet.seq - packet.frame_packet_index,
            )
            self._frames[packet.frame_index] = record
            order = self._order
            index = packet.frame_index
            if not order or index > order[-1]:
                order.append(index)
            else:
                pos = bisect_left(order, index)
                order.insert(pos, index)
                if pos < self._scan_start:
                    # A late retransmission resurrected a frame below the
                    # scan floor; rewind so the sweep visits (and
                    # discards) it.
                    self._scan_start = pos
        return record

    def _display_barrier(self) -> int:
        """Lowest sequence that is still unresolved (missing and not yet
        declared lost); frames entirely below it may display."""
        unresolved = [
            seq for seq, m in self._missing.items() if not m.lost
        ]
        if not unresolved:
            return self._highest_seq + 1
        return min(unresolved)

    def _advance_display(self, now: float) -> list[FrameRecord]:
        frames = self._frames
        order = self._order
        n = len(order)
        i = self._scan_start
        # Advance the floor past settled records before sweeping.
        while i < n:
            record = frames[order[i]]
            if (
                record.display_time is None
                and not record.undecodable
                and not record.lost
            ):
                break
            i += 1
        self._scan_start = i
        barrier = self._display_barrier()
        displayed: list[FrameRecord] = []
        while i < n:
            index = order[i]
            i += 1
            record = frames[index]
            if record.display_time is not None or record.undecodable:
                continue
            if record.lost:
                continue
            if index < self._last_displayed_index:
                # A very late retransmission resurrected a frame the
                # renderer has already moved past: discard it, as a
                # real jitter buffer would.
                record.undecodable = True
                self.stale_frames += 1
                continue
            if record.complete_time is None:
                # An incomplete frame below the barrier can never
                # complete once its gaps are declared lost.
                if self._frame_has_lost_seq(record):
                    record.lost = True
                continue
            end_seq = record.base_seq + record.packet_count - 1
            if end_seq >= barrier:
                break  # this and all later frames wait
            if record.frame_type == "I":
                self._chain_intact = True
            if not self._chain_intact:
                record.undecodable = True
                self._request_pli(now)
                continue
            if self._playout is not None:
                record.display_time = (
                    self._playout.schedule(record.capture_time, now)
                    + DECODE_DELAY
                )
            else:
                record.display_time = now + DECODE_DELAY
            telemetry = self._telemetry
            if telemetry.enabled:
                telemetry.probe(
                    "rtp.playout_delay", now, record.display_time - now
                )
                telemetry.probe(
                    "rtp.frame_latency",
                    now,
                    record.display_time - record.capture_time,
                )
                telemetry.count("rtp.frames_displayed")
            self._last_displayed_index = record.index
            displayed.append(record)
        return displayed

    def _frame_has_lost_seq(self, record: FrameRecord) -> bool:
        end_seq = record.base_seq + record.packet_count - 1
        return any(
            seq in self._missing and self._missing[seq].lost
            for seq in range(record.base_seq, end_seq + 1)
        )

    def _on_losses_confirmed(
        self, now: float, newly_lost: list[int]
    ) -> None:
        breaks_chain = False
        for seq in newly_lost:
            owner = next(
                (r for r in self._frames.values() if r.covers_seq(seq)),
                None,
            )
            # Losing a non-reference (T1) frame is recoverable without
            # a keyframe; anything else breaks the chain.
            if owner is None or owner.temporal_layer == 0:
                breaks_chain = True
        for record in self._frames.values():
            if (
                record.complete_time is None
                and not record.lost
                and self._frame_has_lost_seq(record)
            ):
                record.lost = True
        if breaks_chain:
            self._chain_intact = False
            self._request_pli(now)

    def _request_pli(self, now: float) -> None:
        if self._send_pli is None:
            return
        if now - self._last_pli_time < self._pli_min_interval:
            return
        self._last_pli_time = now
        self.pli_sent += 1
        self._send_pli()
