"""Profiling harness for the simulation hot path.

Runs one pinned session under :mod:`cProfile` and reduces the stats to
the top-N hotspot functions — the measurement loop behind every
optimization in the kernel and packet path (``repro-rtc profile``, and
the profile artifact uploaded by CI's perf-smoke step).

The JSON schema (``SCHEMA_VERSION``):

```
{
  "schema": 3,
  "session": {"policy", "drop_ratio", "duration", "seed", "kernel"},
  "perf": {"wall_seconds", "events_fired", "events_per_sec"},
  "totals": {"calls", "seconds"},
  "event_census": {"<subsystem module>": count, ...},
  "handler_wall": {"<subsystem module>": seconds, ...},
  "hotspots": [
    {"function", "file", "line", "calls", "tottime", "cumtime"},
    ...
  ]
}
```

``hotspots`` is sorted by the chosen key (self time by default —
cumulative time buries leaf hot loops under their callers).
``event_census`` attributes every fired event to the subsystem module
of its callback, and ``handler_wall`` attributes wall time to the same
modules (a dedicated step-driven run, separate from the cProfile
pass). Both are measured under the *profiled* kernel: every backend
supports ``peek_callback``/``step``, and the batched kernel's elided
link services (drain-plan bookkeeping that never becomes an event) are
attributed to the link's module so the census stays comparable with
the heap reference.
"""

from __future__ import annotations

import cProfile
import dataclasses
import json
import pstats
import time
from dataclasses import dataclass

from .errors import ConfigError
from .experiments import scenarios
from .pipeline.config import PolicyName, SessionConfig
from .pipeline.session import RtcSession
from .simcore.backend import resolve_kernel

#: Bump when the JSON layout changes (consumers: CI artifact, tests).
#: v2: session gained ``kernel``; top-level gained ``event_census``.
#: v3: census measured under the profiled kernel (was heap-only);
#: top-level gained ``handler_wall`` (per-handler wall-time table).
SCHEMA_VERSION = 3

#: Default number of hotspot rows reported.
DEFAULT_TOP = 20

_SORT_KEYS = ("tottime", "cumtime")


@dataclass(frozen=True)
class Hotspot:
    """One function's aggregate cost in the profiled run."""

    function: str
    file: str
    line: int
    calls: int
    tottime: float
    cumtime: float


@dataclass(frozen=True)
class ProfileReport:
    """Profiling result for one session run."""

    policy: str
    drop_ratio: float
    duration: float
    seed: int
    kernel: str
    wall_seconds: float
    events_fired: int
    total_calls: int
    total_seconds: float
    sort: str
    hotspots: tuple[Hotspot, ...]
    event_census: tuple[tuple[str, int], ...] = ()
    handler_wall: tuple[tuple[str, float], ...] = ()

    @property
    def events_per_sec(self) -> float:
        """Simulation event throughput of the profiled run."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_fired / self.wall_seconds

    def to_dict(self) -> dict:
        """JSON-ready dict following the module schema."""
        return {
            "schema": SCHEMA_VERSION,
            "session": {
                "policy": self.policy,
                "drop_ratio": self.drop_ratio,
                "duration": self.duration,
                "seed": self.seed,
                "kernel": self.kernel,
            },
            "perf": {
                "wall_seconds": self.wall_seconds,
                "events_fired": self.events_fired,
                "events_per_sec": self.events_per_sec,
            },
            "totals": {
                "calls": self.total_calls,
                "seconds": self.total_seconds,
            },
            "sort": self.sort,
            "event_census": dict(self.event_census),
            "handler_wall": dict(self.handler_wall),
            "hotspots": [
                dataclasses.asdict(spot) for spot in self.hotspots
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The report serialized as JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    def format_text(self) -> str:
        """Human-readable table of the hotspots."""
        lines = [
            f"profile: policy={self.policy} drop_ratio={self.drop_ratio} "
            f"duration={self.duration}s seed={self.seed} "
            f"kernel={self.kernel}",
            f"wall: {self.wall_seconds:.3f}s  "
            f"events: {self.events_fired}  "
            f"({self.events_per_sec:,.0f} events/s)",
            f"calls: {self.total_calls}  "
            f"profiled: {self.total_seconds:.3f}s  sort: {self.sort}",
            "",
            f"{'calls':>9}  {'tottime':>8}  {'cumtime':>8}  function",
        ]
        for spot in self.hotspots:
            lines.append(
                f"{spot.calls:>9}  {spot.tottime:>8.3f}  "
                f"{spot.cumtime:>8.3f}  {spot.function}"
            )
        if self.event_census:
            walls = dict(self.handler_wall)
            lines.append("")
            lines.append(
                f"per-handler attribution ({self.kernel} kernel):"
            )
            lines.append(f"{'events':>9}  {'wall(s)':>8}  subsystem")
            for subsystem, count in self.event_census:
                lines.append(
                    f"{count:>9}  {walls.get(subsystem, 0.0):>8.3f}  "
                    f"{subsystem}"
                )
        return "\n".join(lines) + "\n"


def pinned_config(
    policy: str = "adaptive",
    drop_ratio: float = 0.2,
    duration: float = 25.0,
    seed: int = 1,
) -> SessionConfig:
    """The session configuration the profiler runs: the paper's step-drop
    scenario, fully determined by these four knobs."""
    config = scenarios.step_drop_config(drop_ratio, seed=seed)
    return dataclasses.replace(
        config, policy=PolicyName(policy), duration=duration
    )


def _handler_module(callback) -> str:
    """Subsystem module a callback belongs to (``repro.`` stripped).

    ``functools.partial`` has no ``__module__``, so the wrapped
    callable is used; when that is a compiled twin from
    ``repro._native`` the partial's bound instance decides instead, so
    the census reads the same on both legs.
    """
    target = getattr(callback, "func", callback)
    module = getattr(target, "__module__", None) or "<unknown>"
    if module.startswith("repro._native"):
        args = getattr(callback, "args", ())
        if args:
            module = type(args[0]).__module__
    if module.startswith("repro."):
        module = module[len("repro."):]
    return module


@dataclass(frozen=True)
class HandlerCost:
    """One subsystem's event count and wall time in a census run."""

    module: str
    events: int
    seconds: float


def handler_census(
    policy: str = "adaptive",
    drop_ratio: float = 0.2,
    duration: float = 25.0,
    seed: int = 1,
    kernel: str = "auto",
) -> tuple[HandlerCost, ...]:
    """Per-subsystem event counts and wall time for one pinned session.

    Drives the session one event at a time under the requested kernel
    backend (``"auto"`` resolves the session default) and attributes
    each fired event — and the wall time of firing it — to its
    callback's module. Works on every backend: all three expose
    ``peek_callback``/``step``, and lane heads attribute to the lane's
    ``fire`` target.

    Under the batched kernel, link packet services are elided into
    drain plans and never become events; the scheduler still counts
    them in ``events_fired`` when plans are applied, and the census
    attributes that excess to the link's module (``netsim.link``) so
    totals stay comparable with the heap reference. Registered
    finalizers are flushed at the horizon for the same reason.

    Wall times are *attribution*, not profiling: each step's elapsed
    time lands on the module of the event that fired, including any
    scheduler bookkeeping that step performed.

    Returns :class:`HandlerCost` rows sorted by descending event count.
    """
    config = dataclasses.replace(
        pinned_config(policy, drop_ratio, duration, seed),
        kernel=resolve_kernel(kernel).value,
    )
    session = RtcSession(config)
    scheduler = session.scheduler
    end = config.duration + config.grace_period
    counts: dict[str, int] = {}
    seconds: dict[str, float] = {}
    link_module = "netsim.link"
    perf_counter = time.perf_counter
    while True:
        head = scheduler.peek_time()
        if head is None or head > end:
            break
        module = _handler_module(scheduler.peek_callback())
        fired_before = scheduler.events_fired
        began = perf_counter()
        scheduler.step()
        elapsed = perf_counter() - began
        counts[module] = counts.get(module, 0) + 1
        seconds[module] = seconds.get(module, 0.0) + elapsed
        # Drain-plan services applied lazily during this step (batched
        # kernel only) bump events_fired without a stepped event.
        elided = scheduler.events_fired - fired_before - 1
        if elided > 0:
            counts[link_module] = counts.get(link_module, 0) + elided
    fired_before = scheduler.events_fired
    began = perf_counter()
    for finalizer in getattr(scheduler, "_finalizers", ()):
        finalizer(end)
    elapsed = perf_counter() - began
    elided = scheduler.events_fired - fired_before
    if elided > 0:
        counts[link_module] = counts.get(link_module, 0) + elided
        seconds[link_module] = seconds.get(link_module, 0.0) + elapsed
    return tuple(
        HandlerCost(module, count, seconds.get(module, 0.0))
        for module, count in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )
    )


def event_census(
    policy: str = "adaptive",
    drop_ratio: float = 0.2,
    duration: float = 25.0,
    seed: int = 1,
    kernel: str = "auto",
) -> tuple[tuple[str, int], ...]:
    """Per-subsystem event counts (see :func:`handler_census`).

    Returns ``(subsystem, count)`` pairs sorted by descending count.
    """
    return tuple(
        (cost.module, cost.events)
        for cost in handler_census(policy, drop_ratio, duration, seed, kernel)
    )


def profile_session(
    policy: str = "adaptive",
    drop_ratio: float = 0.2,
    duration: float = 25.0,
    seed: int = 1,
    top: int = DEFAULT_TOP,
    sort: str = "tottime",
) -> ProfileReport:
    """Run one pinned session under cProfile and summarize it.

    Args:
        policy: adaptation policy to run.
        drop_ratio: bandwidth drop ratio of the step scenario.
        duration: simulated seconds.
        seed: session RNG seed.
        top: number of hotspot rows to keep.
        sort: ``"tottime"`` (self time, default) or ``"cumtime"``.
    """
    if top < 1:
        raise ConfigError(f"top must be >= 1, got {top!r}")
    if sort not in _SORT_KEYS:
        raise ConfigError(
            f"sort must be one of {_SORT_KEYS}, got {sort!r}"
        )
    config = pinned_config(policy, drop_ratio, duration, seed)
    session = RtcSession(config)
    profiler = cProfile.Profile()
    profiler.enable()
    result = session.run()
    profiler.disable()

    stats = pstats.Stats(profiler)
    total_calls = stats.total_calls  # type: ignore[attr-defined]
    total_seconds = stats.total_tt  # type: ignore[attr-defined]
    sort_index = 2 if sort == "tottime" else 3
    rows = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][sort_index],
        reverse=True,
    )[:top]
    hotspots = tuple(
        Hotspot(
            function=f"{filename}:{line}({name})",
            file=filename,
            line=line,
            calls=int(ncalls),
            tottime=float(tottime),
            cumtime=float(cumtime),
        )
        for (filename, line, name), (
            _primitive,
            ncalls,
            tottime,
            cumtime,
            _callers,
        ) in rows
    )

    perf = result.perf
    assert perf is not None  # sessions run inline always attach perf
    kernel = resolve_kernel(config.kernel).value
    census = handler_census(
        policy, drop_ratio, duration, seed, kernel=kernel
    )
    return ProfileReport(
        policy=policy,
        drop_ratio=drop_ratio,
        duration=duration,
        seed=seed,
        kernel=kernel,
        wall_seconds=perf.wall_seconds,
        events_fired=perf.events_fired,
        total_calls=int(total_calls),
        total_seconds=float(total_seconds),
        sort=sort,
        hotspots=hotspots,
        event_census=tuple(
            (cost.module, cost.events) for cost in census
        ),
        handler_wall=tuple(
            (cost.module, cost.seconds) for cost in census
        ),
    )
