"""Profiling harness for the simulation hot path.

Runs one pinned session under :mod:`cProfile` and reduces the stats to
the top-N hotspot functions — the measurement loop behind every
optimization in the kernel and packet path (``repro-rtc profile``, and
the profile artifact uploaded by CI's perf-smoke step).

The JSON schema (``SCHEMA_VERSION``):

```
{
  "schema": 2,
  "session": {"policy", "drop_ratio", "duration", "seed", "kernel"},
  "perf": {"wall_seconds", "events_fired", "events_per_sec"},
  "totals": {"calls", "seconds"},
  "event_census": {"<subsystem module>": count, ...},
  "hotspots": [
    {"function", "file", "line", "calls", "tottime", "cumtime"},
    ...
  ]
}
```

``hotspots`` is sorted by the chosen key (self time by default —
cumulative time buries leaf hot loops under their callers).
``event_census`` attributes every fired event to the subsystem module
of its callback; it is measured under the *heap* kernel regardless of
the profiled kernel, because the heap backend is the golden reference
where every event is individually visible (the batched kernel elides
link/pacer events into lanes).
"""

from __future__ import annotations

import cProfile
import dataclasses
import json
import pstats
from dataclasses import dataclass

from .errors import ConfigError
from .experiments import scenarios
from .pipeline.config import PolicyName, SessionConfig
from .pipeline.session import RtcSession
from .simcore.backend import resolve_kernel

#: Bump when the JSON layout changes (consumers: CI artifact, tests).
#: v2: session gained ``kernel``; top-level gained ``event_census``.
SCHEMA_VERSION = 2

#: Default number of hotspot rows reported.
DEFAULT_TOP = 20

_SORT_KEYS = ("tottime", "cumtime")


@dataclass(frozen=True)
class Hotspot:
    """One function's aggregate cost in the profiled run."""

    function: str
    file: str
    line: int
    calls: int
    tottime: float
    cumtime: float


@dataclass(frozen=True)
class ProfileReport:
    """Profiling result for one session run."""

    policy: str
    drop_ratio: float
    duration: float
    seed: int
    kernel: str
    wall_seconds: float
    events_fired: int
    total_calls: int
    total_seconds: float
    sort: str
    hotspots: tuple[Hotspot, ...]
    event_census: tuple[tuple[str, int], ...] = ()

    @property
    def events_per_sec(self) -> float:
        """Simulation event throughput of the profiled run."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_fired / self.wall_seconds

    def to_dict(self) -> dict:
        """JSON-ready dict following the module schema."""
        return {
            "schema": SCHEMA_VERSION,
            "session": {
                "policy": self.policy,
                "drop_ratio": self.drop_ratio,
                "duration": self.duration,
                "seed": self.seed,
                "kernel": self.kernel,
            },
            "perf": {
                "wall_seconds": self.wall_seconds,
                "events_fired": self.events_fired,
                "events_per_sec": self.events_per_sec,
            },
            "totals": {
                "calls": self.total_calls,
                "seconds": self.total_seconds,
            },
            "sort": self.sort,
            "event_census": dict(self.event_census),
            "hotspots": [
                dataclasses.asdict(spot) for spot in self.hotspots
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The report serialized as JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    def format_text(self) -> str:
        """Human-readable table of the hotspots."""
        lines = [
            f"profile: policy={self.policy} drop_ratio={self.drop_ratio} "
            f"duration={self.duration}s seed={self.seed} "
            f"kernel={self.kernel}",
            f"wall: {self.wall_seconds:.3f}s  "
            f"events: {self.events_fired}  "
            f"({self.events_per_sec:,.0f} events/s)",
            f"calls: {self.total_calls}  "
            f"profiled: {self.total_seconds:.3f}s  sort: {self.sort}",
            "",
            f"{'calls':>9}  {'tottime':>8}  {'cumtime':>8}  function",
        ]
        for spot in self.hotspots:
            lines.append(
                f"{spot.calls:>9}  {spot.tottime:>8.3f}  "
                f"{spot.cumtime:>8.3f}  {spot.function}"
            )
        if self.event_census:
            lines.append("")
            lines.append("event census (heap-kernel reference):")
            for subsystem, count in self.event_census:
                lines.append(f"{count:>9}  {subsystem}")
        return "\n".join(lines) + "\n"


def pinned_config(
    policy: str = "adaptive",
    drop_ratio: float = 0.2,
    duration: float = 25.0,
    seed: int = 1,
) -> SessionConfig:
    """The session configuration the profiler runs: the paper's step-drop
    scenario, fully determined by these four knobs."""
    config = scenarios.step_drop_config(drop_ratio, seed=seed)
    return dataclasses.replace(
        config, policy=PolicyName(policy), duration=duration
    )


def event_census(
    policy: str = "adaptive",
    drop_ratio: float = 0.2,
    duration: float = 25.0,
    seed: int = 1,
) -> tuple[tuple[str, int], ...]:
    """Per-subsystem event counts for one pinned session.

    Drives the session one event at a time under the **heap** kernel
    and attributes each fired event to its callback's module (with the
    ``repro.`` prefix stripped). The heap backend is used regardless of
    the session default because it is the golden reference where every
    event is individually visible — the batched kernel elides link and
    pacer events into lanes, which would undercount those subsystems.

    Returns ``(subsystem, count)`` pairs sorted by descending count.
    """
    config = dataclasses.replace(
        pinned_config(policy, drop_ratio, duration, seed),
        kernel="heap",
    )
    session = RtcSession(config)
    scheduler = session.scheduler
    end = config.duration + config.grace_period
    census: dict[str, int] = {}
    heap = scheduler._heap
    while True:
        scheduler._drop_cancelled()
        if not heap or heap[0][0] > end:
            break
        callback = heap[0][3].callback
        # functools.partial has no __module__; look through to the
        # wrapped callable.
        target = getattr(callback, "func", callback)
        module = getattr(target, "__module__", None) or "<unknown>"
        if module.startswith("repro."):
            module = module[len("repro."):]
        census[module] = census.get(module, 0) + 1
        scheduler.step()
    return tuple(
        sorted(census.items(), key=lambda item: (-item[1], item[0]))
    )


def profile_session(
    policy: str = "adaptive",
    drop_ratio: float = 0.2,
    duration: float = 25.0,
    seed: int = 1,
    top: int = DEFAULT_TOP,
    sort: str = "tottime",
) -> ProfileReport:
    """Run one pinned session under cProfile and summarize it.

    Args:
        policy: adaptation policy to run.
        drop_ratio: bandwidth drop ratio of the step scenario.
        duration: simulated seconds.
        seed: session RNG seed.
        top: number of hotspot rows to keep.
        sort: ``"tottime"`` (self time, default) or ``"cumtime"``.
    """
    if top < 1:
        raise ConfigError(f"top must be >= 1, got {top!r}")
    if sort not in _SORT_KEYS:
        raise ConfigError(
            f"sort must be one of {_SORT_KEYS}, got {sort!r}"
        )
    config = pinned_config(policy, drop_ratio, duration, seed)
    session = RtcSession(config)
    profiler = cProfile.Profile()
    profiler.enable()
    result = session.run()
    profiler.disable()

    stats = pstats.Stats(profiler)
    total_calls = stats.total_calls  # type: ignore[attr-defined]
    total_seconds = stats.total_tt  # type: ignore[attr-defined]
    sort_index = 2 if sort == "tottime" else 3
    rows = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][sort_index],
        reverse=True,
    )[:top]
    hotspots = tuple(
        Hotspot(
            function=f"{filename}:{line}({name})",
            file=filename,
            line=line,
            calls=int(ncalls),
            tottime=float(tottime),
            cumtime=float(cumtime),
        )
        for (filename, line, name), (
            _primitive,
            ncalls,
            tottime,
            cumtime,
            _callers,
        ) in rows
    )

    perf = result.perf
    assert perf is not None  # sessions run inline always attach perf
    return ProfileReport(
        policy=policy,
        drop_ratio=drop_ratio,
        duration=duration,
        seed=seed,
        kernel=resolve_kernel(config.kernel).value,
        wall_seconds=perf.wall_seconds,
        events_fired=perf.events_fired,
        total_calls=int(total_calls),
        total_seconds=float(total_seconds),
        sort=sort,
        hotspots=hotspots,
        event_census=event_census(policy, drop_ratio, duration, seed),
    )
