"""Evaluation metrics: latency, quality, and summary formatting."""

from .latency import cdf, percentile, spike_episodes, time_above
from .quality import (
    mean_ssim_db,
    percent_change,
    quality_switches,
    ssim_to_db,
)
from .summary import format_comparison_table, format_series

__all__ = [
    "cdf",
    "format_comparison_table",
    "format_series",
    "mean_ssim_db",
    "percent_change",
    "percentile",
    "quality_switches",
    "spike_episodes",
    "ssim_to_db",
    "time_above",
]
