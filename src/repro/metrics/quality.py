"""Quality metric helpers."""

from __future__ import annotations

import math

import numpy as np

from ..errors import ReproError


def percent_change(baseline: float, treatment: float) -> float:
    """Percentage change of ``treatment`` over ``baseline`` (+ = better)."""
    if baseline == 0:
        raise ReproError("baseline value is zero")
    return (treatment / baseline - 1.0) * 100.0


def ssim_to_db(ssim: float) -> float:
    """The common dB transform: −10·log10(1 − SSIM)."""
    if not 0 <= ssim < 1:
        raise ReproError(f"ssim must be in [0, 1), got {ssim!r}")
    return -10.0 * math.log10(1.0 - ssim)


def mean_ssim_db(ssims: np.ndarray | list[float]) -> float:
    """Average SSIM expressed in dB (penalizes bad frames more)."""
    array = np.asarray(ssims, dtype=float)
    if array.size == 0:
        raise ReproError("no samples")
    return float(np.mean([ssim_to_db(min(s, 0.999999)) for s in array]))


def quality_switches(qps: np.ndarray | list[float], step: float = 4.0) -> int:
    """Count abrupt QP moves (> ``step``) — a perceptual-stability proxy."""
    array = np.asarray(qps, dtype=float)
    if array.size < 2:
        return 0
    return int(np.sum(np.abs(np.diff(array)) > step))
