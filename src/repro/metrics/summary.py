"""Human-readable summaries for benchmark output.

The benchmark harness prints the same rows the paper's table reports;
these helpers format them consistently.
"""

from __future__ import annotations

from ..pipeline.sweeps import ComparisonRow


def format_comparison_table(
    rows: list[ComparisonRow], title: str = ""
) -> str:
    """Render comparison rows as an aligned text table."""
    header = (
        f"{'scenario':<22} {'base lat':>9} {'adpt lat':>9} "
        f"{'lat redu':>9} {'p95 redu':>9} {'base SSIM':>10} "
        f"{'adpt SSIM':>10} {'SSIM chg':>9}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.label:<22} "
            f"{row.baseline_latency * 1e3:>7.1f}ms "
            f"{row.adaptive_latency * 1e3:>7.1f}ms "
            f"{row.latency_reduction * 100:>8.2f}% "
            f"{row.p95_latency_reduction * 100:>8.2f}% "
            f"{row.baseline_ssim:>10.4f} "
            f"{row.adaptive_ssim:>10.4f} "
            f"{row.ssim_change * 100:>+8.2f}%"
        )
    return "\n".join(lines)


def format_series(
    name: str, xs: list[float], ys: list[float], x_label: str, y_label: str
) -> str:
    """Render a figure data series as aligned columns."""
    lines = [name, f"{x_label:>12} {y_label:>14}"]
    for x, y in zip(xs, ys):
        lines.append(f"{x:>12.4f} {y:>14.6f}")
    return "\n".join(lines)
