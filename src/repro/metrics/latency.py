"""Latency metric helpers (array-level, session-agnostic)."""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


def cdf(values: np.ndarray | list[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probabilities)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ReproError("cannot compute a CDF of no samples")
    ordered = np.sort(array)
    probs = np.arange(1, ordered.size + 1) / ordered.size
    return ordered, probs


def percentile(values: np.ndarray | list[float], q: float) -> float:
    """Percentile ``q`` of the samples."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ReproError("no samples")
    return float(np.percentile(array, q))


def spike_episodes(
    times: np.ndarray | list[float],
    latencies: np.ndarray | list[float],
    threshold: float,
) -> list[tuple[float, float, float]]:
    """Contiguous runs where latency exceeds ``threshold``.

    Returns ``(start_time, end_time, peak_latency)`` per episode —
    useful for measuring how long a bandwidth-drop spike lasted.
    """
    t = np.asarray(times, dtype=float)
    lat = np.asarray(latencies, dtype=float)
    if t.shape != lat.shape:
        raise ReproError("times and latencies must align")
    episodes: list[tuple[float, float, float]] = []
    start: float | None = None
    peak = 0.0
    for time, value in zip(t, lat):
        if value > threshold:
            if start is None:
                start = time
                peak = value
            else:
                peak = max(peak, value)
        elif start is not None:
            episodes.append((start, time, peak))
            start = None
    if start is not None:
        episodes.append((start, float(t[-1]), peak))
    return episodes


def time_above(
    times: np.ndarray | list[float],
    latencies: np.ndarray | list[float],
    threshold: float,
) -> float:
    """Total time (s) latency spent above ``threshold``."""
    return sum(end - start for start, end, _ in spike_episodes(
        times, latencies, threshold
    ))
