"""Simulated wall clock.

The clock is owned and advanced by the scheduler; every other component
reads it. Keeping it as a tiny object (rather than a float passed around)
lets components hold a live reference and always observe current time.
"""

from __future__ import annotations

from ..errors import SimulationError


class Clock:
    """Monotonic simulated clock measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises:
            SimulationError: if ``time`` is in the past — the kernel never
                rewinds time, so this always indicates a scheduler bug.
        """
        if time < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {self._now:.9f} -> {time:.9f}"
            )
        self._now = time
