"""Discrete-event simulation kernel.

Exports the pieces every other subsystem builds on: the event
:class:`Scheduler`, :class:`Clock`, :class:`Event`, recurring
:class:`PeriodicProcess`, and seeded :class:`RngStreams`.
"""

from .clock import Clock
from .events import Event
from .process import PeriodicProcess
from .rng import RngStreams
from .scheduler import Scheduler

__all__ = ["Clock", "Event", "PeriodicProcess", "RngStreams", "Scheduler"]
