"""Recurring processes layered on top of the scheduler.

:class:`PeriodicProcess` is the building block for anything that ticks —
the video source (one frame per interval), the feedback sender, the pacer
budget refresh. It reschedules itself on a fixed period and supports
clean cancellation and live period changes.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError
from .events import Event
from .scheduler import Scheduler


class PeriodicProcess:
    """Invoke a callback every ``period`` seconds until stopped.

    The callback receives the tick index (0, 1, 2, ...). Each tick is
    scheduled exactly one period after the previous tick's firing time, so
    the cadence is drift-free in simulated time.
    """

    __slots__ = (
        "_scheduler",
        "_period",
        "_callback",
        "_priority",
        "_tick",
        "_stopped",
        "_pending",
    )

    def __init__(
        self,
        scheduler: Scheduler,
        period: float,
        callback: Callable[[int], None],
        start_at: float | None = None,
        priority: int = 0,
    ) -> None:
        if period <= 0:
            raise ConfigError(f"period must be positive, got {period!r}")
        self._scheduler = scheduler
        self._period = period
        self._callback = callback
        self._priority = priority
        self._tick = 0
        self._stopped = False
        first = scheduler.now if start_at is None else start_at
        self._pending: Event | None = scheduler.call_at(
            first, self._fire, priority
        )

    @property
    def period(self) -> float:
        """Current tick period in seconds."""
        return self._period

    @property
    def ticks(self) -> int:
        """Number of ticks delivered so far."""
        return self._tick

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    def set_period(self, period: float) -> None:
        """Change the period, effective from the next reschedule."""
        if period <= 0:
            raise ConfigError(f"period must be positive, got {period!r}")
        self._period = period

    def stop(self) -> None:
        """Cancel future ticks. Idempotent."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _fire(self) -> None:
        if self._stopped:
            return
        tick = self._tick
        self._tick += 1
        self._pending = self._scheduler.call_at(
            self._scheduler.now + self._period, self._fire, self._priority
        )
        self._callback(tick)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PeriodicProcess(period={self._period}, ticks={self._tick}, "
            f"stopped={self._stopped})"
        )
