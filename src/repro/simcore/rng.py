"""Seeded random-number streams.

Every stochastic component (loss model, cross traffic, content generator,
trace generator) draws from its own named stream derived from one master
seed. This gives two properties the test suite depends on:

* **Reproducibility** — same config + seed => bit-identical simulation.
* **Isolation** — adding draws in one component does not perturb the
  sequence seen by another.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """A factory of independent, deterministically seeded generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream seed is derived by hashing ``(master_seed, name)`` so the
        mapping is stable across runs and process invocations (unlike
        ``hash()``, which is salted).
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self._seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, offset: int) -> "RngStreams":
        """Derive a new master (e.g., one per repetition of a sweep)."""
        return RngStreams(self._seed + offset)
