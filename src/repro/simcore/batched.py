"""Batched event kernel: heap + append-only event lanes.

The serial kernel pays a heap push, an :class:`Event` allocation, and a
heap pop for *every* packet service, even though between control events
(feedback, rate decisions, fault transitions) the bottleneck drain is a
pure deterministic function of state already known at enqueue time.

:class:`BatchedScheduler` exploits that: components whose future events
are (a) computable in advance and (b) emitted in non-decreasing time
order register a :class:`Timeline` *lane* — a flat append-only array of
``(time, payload)`` pairs consumed by a cursor. Appending to a lane is a
list append; firing the head is a cursor increment. No Event object, no
heap sift, no per-event closure. The run loop merges the binary heap
with the lane heads (a linear scan over a handful of floats), firing
whichever is earliest.

Determinism contract (gated by ``tools/check_golden.py --compare-kernels``
and the kernel-equivalence integration tests):

* lane entries fire at exactly the float times the serial kernel would
  have computed — producers must derive them with the *same arithmetic
  expressions* as their serial code paths;
* on an exact time tie between the heap and a lane, the heap fires
  first. This matches the serial order for the lane patterns used in
  this repo (a lane entry at time ``t`` is always appended *at* ``t`` by
  the currently-running callback, i.e. it would have carried the largest
  sequence number among events at ``t``);
* ``events_fired`` counts lane firings too, and lane owners that batch
  further work (the link's drain plan) report their implied firings via
  :attr:`Scheduler.events_fired` bookkeeping inside their sync hooks, so
  end-of-run event counts are identical across kernels.

Lane owners with lazily-applied state (the link drain plan) register a
*finalizer*: ``run_until(end)`` invokes every finalizer with ``end``
after the merge loop, so statistics and queue state observed after a run
slice are exact even if no event forced a sync.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import Callable

from .. import _native
from ..errors import SchedulingError
from .scheduler import Scheduler, _INF

#: Compiled twin of the merge loop (``repro._native``); rebound by
#: :func:`repro._native.configure` so the compiled and pure legs can be
#: toggled at runtime (``check_golden --compare-kernels`` does).
_native_run_core = None


def _apply_native(mod) -> None:
    global _native_run_core
    _native_run_core = getattr(mod, "run_core", None) if mod else None


_native.register(_apply_native)

#: Fired prefixes of a lane are trimmed once the cursor passes this many
#: entries, keeping lane memory proportional to the pending window.
_TRIM_THRESHOLD = 4096


class Timeline:
    """An append-only, time-sorted event lane.

    Producers append ``(time, payload)`` with non-decreasing times; the
    owning :class:`BatchedScheduler` fires heads in global time order by
    merging all lanes with its heap. ``fire(payload)`` is the single
    callback for every entry in the lane.

    A lane may additionally provide ``fire_many(times, payloads, lo,
    hi)`` — the *bulk fast lane*. When the scheduler finds a contiguous
    run of lane entries that all precede the next heap event, every
    other lane's head, and the run horizon, it hands the whole run to
    ``fire_many`` in one call instead of firing entries one at a time.
    The contract (gated by ``tools/check_golden.py --compare-kernels``
    and the bulk-vs-scalar property tests):

    * ``fire_many`` must be observationally identical to calling
      ``fire`` once per entry in order — same end state, same telemetry,
      same decisions;
    * it advances ``scheduler.clock._now`` to each entry's time before
      processing it (so any escape into the scheduler — a PLI send, a
      reverse-link enqueue — sees the exact per-event clock);
    * it returns the number of entries consumed (``1 <= n <= hi - lo``)
      and must stop *immediately after* any entry whose processing had a
      scheduling side effect (heap push or lane append): the scheduler
      then re-merges, so a control event landing inside the run's time
      span still fires at its exact position. This is the run-splitting
      invariant that keeps the bulk path bit-identical.
    """

    __slots__ = (
        "times",
        "payloads",
        "cursor",
        "fire",
        "fire_many",
        "label",
        "_scheduler",
    )

    def __init__(
        self,
        scheduler: "BatchedScheduler",
        fire: Callable[[object], None],
        label: str = "",
        fire_many: Callable[[list, list, int, int], int] | None = None,
    ) -> None:
        self.times: list[float] = []
        self.payloads: list[object] = []
        self.cursor = 0
        self.fire = fire
        self.fire_many = fire_many
        self.label = label
        self._scheduler = scheduler

    @property
    def pending(self) -> int:
        """Entries appended but not yet fired."""
        return len(self.times) - self.cursor

    def head_time(self) -> float:
        """Time of the next entry, or ``inf`` when the lane is drained."""
        cursor = self.cursor
        times = self.times
        return times[cursor] if cursor < len(times) else _INF

    def append(self, time: float, payload: object = None) -> None:
        """Append an entry; ``time`` must not precede the pending tail
        or the current clock (lanes cannot reorder or fire in the past).
        """
        times = self.times
        cursor = self.cursor
        if cursor < len(times):
            if time < times[-1]:
                raise SchedulingError(
                    f"lane {self.label!r}: append at {time!r} precedes "
                    f"pending tail {times[-1]!r}"
                )
        elif time < self._scheduler.clock._now:
            raise SchedulingError(
                f"lane {self.label!r}: append at {time!r} precedes "
                f"now={self._scheduler.clock._now!r}"
            )
        elif cursor >= _TRIM_THRESHOLD:
            # Lane fully drained and the fired prefix has grown long:
            # reclaim it before starting the next stretch.
            del times[:cursor]
            del self.payloads[:cursor]
            self.cursor = 0
        times.append(time)
        self.payloads.append(payload)


class BatchedScheduler(Scheduler):
    """Heap scheduler extended with event lanes and sync finalizers.

    Control events (timers, feedback, faults, retransmissions) keep the
    exact heap semantics of the base class; high-volume precomputable
    chains (link arrivals, pacer releases) ride lanes. Components that
    defer bookkeeping until observation register finalizers so state is
    exact at every ``run_until`` boundary.
    """

    __slots__ = ("_lanes", "_finalizers", "_lane_fired")

    supports_batching = True

    def __init__(self, start: float = 0.0, telemetry=None) -> None:
        super().__init__(start, telemetry)
        self._lanes: list[Timeline] = []
        self._finalizers: list[Callable[[float], None]] = []
        self._lane_fired = 0

    # ------------------------------------------------------------------
    @property
    def lane_events_fired(self) -> int:
        """Events fired via lanes (subset of :attr:`events_fired`)."""
        return self._lane_fired

    @property
    def lane_pending(self) -> int:
        """Entries waiting across all lanes (diagnostics).

        Note: lanes hold *precomputed* futures (e.g. one arrival per
        queued link packet), so this over-counts relative to the heap
        kernel's ``pending_active``, which holds at most one in-flight
        service event per link at a time.
        """
        return sum(lane.pending for lane in self._lanes)

    def new_lane(
        self,
        fire: Callable[[object], None],
        label: str = "",
        fire_many: Callable[[list, list, int, int], int] | None = None,
    ) -> Timeline:
        """Register and return a new event lane (see :class:`Timeline`
        for the optional bulk ``fire_many`` contract)."""
        lane = Timeline(self, fire, label, fire_many)
        self._lanes.append(lane)
        return lane

    def add_finalizer(self, finalizer: Callable[[float], None]) -> None:
        """Register a hook invoked with the horizon time after every
        ``run_until`` slice (and with the final clock after ``run``)."""
        self._finalizers.append(finalizer)

    # ------------------------------------------------------------------
    def _sweep_heap_head(self) -> float:
        """Drop cancelled heap heads; return the head time (inf if empty)."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            event = heap[0][3]
            if not event.cancelled:
                return heap[0][0]
            pop(heap)
            event._scheduler = None
            self._cancelled_pending -= 1
        return _INF

    def _min_lane(self) -> tuple[float, Timeline | None]:
        best_time = _INF
        best = None
        for lane in self._lanes:
            cursor = lane.cursor
            times = lane.times
            if cursor < len(times):
                time = times[cursor]
                if time < best_time:
                    best_time = time
                    best = lane
        return best_time, best

    def peek_time(self) -> float | None:
        """Time of the next event across heap and lanes (``None`` if idle)."""
        t_heap = self._sweep_heap_head()
        t_lane, _ = self._min_lane()
        head = t_heap if t_heap <= t_lane else t_lane
        return None if head == _INF else head

    def peek_callback(self) -> Callable[[], None] | None:
        """Callback of the next event without firing it (``None`` if
        idle). For a lane head this is the lane's ``fire``; heap wins
        exact ties, mirroring :meth:`step`. Diagnostic — see
        :meth:`Scheduler.peek_callback`."""
        t_heap = self._sweep_heap_head()
        t_lane, lane = self._min_lane()
        if t_heap <= t_lane:
            if not self._heap:
                return None
            return self._heap[0][3].callback
        return lane.fire

    def step(self) -> bool:
        """Fire the single next event (heap-first on exact time ties)."""
        t_heap = self._sweep_heap_head()
        t_lane, lane = self._min_lane()
        if t_heap <= t_lane:
            if not self._heap:
                return False
            _, _, _, event = heapq.heappop(self._heap)
            event._scheduler = None
            self.clock.advance_to(t_heap)
            self._events_fired += 1
            event.callback()
        else:
            index = lane.cursor
            lane.cursor = index + 1
            payload = lane.payloads[index]
            lane.payloads[index] = None
            self.clock.advance_to(t_lane)
            self._events_fired += 1
            self._lane_fired += 1
            lane.fire(payload)
        return True

    def run_until(self, end_time: float) -> None:
        """Merge-run heap and lanes up to ``end_time``, then finalize."""
        if self._running:
            raise SchedulingError("run_until called re-entrantly")
        self._running = True
        clock = self.clock
        telemetry = self._telemetry
        track_depth = telemetry.enabled
        fired_before = self._events_fired
        lane_fired_before = self._lane_fired
        max_depth = len(self._heap) - self._cancelled_pending
        try:
            run_core = _native_run_core
            if run_core is not None:
                max_depth = run_core(self, end_time, max_depth, track_depth)
            else:
                max_depth = self._merge_loop(
                    end_time, track_depth, max_depth
                )
            for finalizer in self._finalizers:
                finalizer(end_time)
            if track_depth:
                telemetry.count(
                    "scheduler.events", self._events_fired - fired_before
                )
                telemetry.count(
                    "scheduler.lane_events",
                    self._lane_fired - lane_fired_before,
                )
                prev_max = telemetry.gauges.get(
                    "scheduler.max_queue_depth", 0.0
                )
                telemetry.gauge(
                    "scheduler.max_queue_depth", max(prev_max, max_depth)
                )
            if end_time > clock._now:
                clock.advance_to(end_time)
        finally:
            self._running = False

    def _merge_loop(
        self, end_time: float, track_depth: bool, max_depth: int
    ) -> int:
        """The pure-Python merge loop (compiled twin:
        ``repro._native._hotpath.run_core``). Returns the peak active
        heap depth observed."""
        heap = self._heap
        lanes = self._lanes
        clock = self.clock
        pop = heapq.heappop
        while True:
            # Inline cancelled-head sweep (hot path).
            while heap:
                entry = heap[0]
                event = entry[3]
                if not event.cancelled:
                    break
                pop(heap)
                event._scheduler = None
                self._cancelled_pending -= 1
            t_heap = heap[0][0] if heap else _INF
            t_lane = _INF
            best = None
            for lane in lanes:
                cursor = lane.cursor
                times = lane.times
                if cursor < len(times):
                    time = times[cursor]
                    if time < t_lane:
                        t_lane = time
                        best = lane
            if t_heap <= t_lane:
                if t_heap > end_time or not heap:
                    break
                entry = heap[0]
                pop(heap)
                event = entry[3]
                event._scheduler = None
                clock._now = t_heap
                self._events_fired += 1
                event.callback()
            else:
                if t_lane > end_time:
                    break
                index = best.cursor
                fired = 0
                fire_many = best.fire_many
                if fire_many is not None:
                    times = best.times
                    # A run may not reach the next heap event or any
                    # other lane's head (the heap wins exact ties,
                    # and cross-lane ties keep the scalar order), so
                    # both bounds are strict; only the horizon is
                    # inclusive.
                    strict = t_heap
                    for lane in lanes:
                        if lane is not best:
                            cursor = lane.cursor
                            lane_times = lane.times
                            if cursor < len(lane_times):
                                head = lane_times[cursor]
                                if head < strict:
                                    strict = head
                    hi = bisect_right(times, end_time, index)
                    if strict <= end_time:
                        hi = bisect_left(times, strict, index, hi)
                    if hi - index >= 2:
                        fired = fire_many(
                            times, best.payloads, index, hi
                        )
                        if not 1 <= fired <= hi - index:
                            raise SchedulingError(
                                f"lane {best.label!r}: fire_many "
                                f"consumed {fired!r} of a "
                                f"{hi - index}-entry run"
                            )
                        cursor = index + fired
                        best.cursor = cursor
                        best.payloads[index:cursor] = [None] * fired
                        # fire_many advanced the clock per entry;
                        # pin it to the last consumed time anyway so
                        # a consumer bug cannot leave it behind.
                        clock._now = times[cursor - 1]
                        self._events_fired += fired
                        self._lane_fired += fired
                if not fired:
                    best.cursor = index + 1
                    payload = best.payloads[index]
                    best.payloads[index] = None
                    clock._now = t_lane
                    self._events_fired += 1
                    self._lane_fired += 1
                    best.fire(payload)
            if track_depth:
                depth = len(heap) - self._cancelled_pending
                if depth > max_depth:
                    max_depth = depth
        return max_depth

    def run(self) -> None:
        """Run until heap and lanes are exhausted, then finalize at the
        final clock (never-completing work — e.g. packets stuck behind a
        dead link — stays pending, exactly as in the serial kernel)."""
        while self.step():
            pass
        for finalizer in self._finalizers:
            finalizer(self.clock._now)
