"""Event objects for the discrete-event simulation kernel.

An :class:`Event` couples a firing time with a zero-argument callback.
The scheduler keeps events in a binary heap of
``(time, priority, sequence)``-keyed tuples so that execution is
deterministic: two events at the same instant fire in the order they
were scheduled unless an explicit priority says otherwise. Sequence
numbers are assigned by the owning :class:`~repro.simcore.scheduler.
Scheduler` (per-scheduler, starting at 0), so an event's repr and
ordering are reproducible regardless of how many sessions ran earlier
in the process.

``Event`` is a ``__slots__`` class rather than a dataclass: it is
allocated once per scheduled callback — the single hottest allocation
in the simulator — and slots keep both construction and attribute
access cheap.
"""

from __future__ import annotations

from typing import Callable


def _noop() -> None:
    return None


class Event:
    """A scheduled callback in the simulation.

    Attributes:
        time: Absolute simulation time (seconds) at which to fire.
        priority: Lower fires first among events at the same time.
        sequence: Scheduling order tie-breaker, assigned by the
            scheduler (per-scheduler counter, starting at 0).
        callback: The zero-argument callable to invoke.
        cancelled: Set via :meth:`cancel`; cancelled events are skipped.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "cancelled", "_scheduler")

    def __init__(
        self,
        time: float,
        priority: int = 0,
        sequence: int = 0,
        callback: Callable[[], None] = _noop,
        cancelled: bool = False,
        scheduler=None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = cancelled
        #: Back-reference used for cancellation accounting; the owning
        #: scheduler detaches it once the event leaves the heap.
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Mark the event so the scheduler drops it instead of firing it.

        Idempotent. While the event is still queued, the owning
        scheduler is notified so it can track the cancelled fraction of
        its heap (and compact it lazily once dead timers dominate).
        """
        if self.cancelled:
            return
        self.cancelled = True
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler._note_cancelled()

    def fire(self) -> None:
        """Invoke the callback (the scheduler checks ``cancelled`` first)."""
        self.callback()

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"sequence={self.sequence!r}{state})"
        )
