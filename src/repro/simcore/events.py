"""Event objects for the discrete-event simulation kernel.

An :class:`Event` couples a firing time with a zero-argument callback.
Events are totally ordered by ``(time, priority, sequence)`` so that the
scheduler is deterministic: two events at the same instant fire in the
order they were scheduled unless an explicit priority says otherwise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

#: Module-wide monotonically increasing tie-breaker for event ordering.
_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled callback in the simulation.

    Attributes:
        time: Absolute simulation time (seconds) at which to fire.
        priority: Lower fires first among events at the same time.
        sequence: Scheduling order tie-breaker, assigned automatically.
        callback: The zero-argument callable to invoke.
        cancelled: Set via :meth:`cancel`; cancelled events are skipped.
    """

    time: float
    priority: int = 0
    sequence: int = field(default_factory=lambda: next(_sequence))
    callback: Callable[[], None] = field(compare=False, default=lambda: None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler drops it instead of firing it."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (the scheduler checks ``cancelled`` first)."""
        self.callback()
