"""Deterministic discrete-event scheduler.

This is the heart of the simulation: a binary-heap event queue plus a
:class:`~repro.simcore.clock.Clock`. Components schedule callbacks with
:meth:`Scheduler.call_at` / :meth:`Scheduler.call_in`, and the experiment
driver runs the loop with :meth:`Scheduler.run_until`.

Determinism guarantees:

* events fire in ``(time, priority, scheduling order)`` order;
* the clock advances only inside :meth:`run_until` / :meth:`step`;
* no real time or OS entropy is consulted anywhere in the kernel.

Performance notes (this file is the hottest loop in the repo — see
``repro-rtc profile``):

* the heap stores ``(time, priority, seq, event)`` tuples, so heap
  sift comparisons are C tuple comparisons instead of Python-level
  ``Event.__lt__`` calls;
* the sequence tie-breaker is a per-scheduler counter, so event
  ordering and reprs are reproducible regardless of process history;
* cancelled events are dropped lazily when popped, and the heap is
  compacted outright once cancelled entries exceed
  :attr:`Scheduler.COMPACT_FRACTION` of it (cancellation-heavy
  workloads — NACK/retransmit timers — otherwise drag dead weight
  through every sift).
"""

from __future__ import annotations

import heapq
import math
from heapq import heappush as _heappush
from typing import Callable

from ..errors import SchedulingError
from ..telemetry.recorder import NULL_TELEMETRY, Telemetry
from .clock import Clock
from .events import Event

_isfinite = math.isfinite
_INF = float("inf")


class Scheduler:
    """Event loop for the simulation.

    Example:
        >>> sched = Scheduler()
        >>> fired = []
        >>> _ = sched.call_in(1.0, lambda: fired.append(sched.now))
        >>> sched.run_until(2.0)
        >>> fired
        [1.0]
    """

    __slots__ = (
        "clock",
        "_heap",
        "_events_fired",
        "_running",
        "_telemetry",
        "_next_seq",
        "_cancelled_pending",
    )

    #: Lazy-compaction thresholds: the heap is rebuilt without cancelled
    #: entries once at least ``COMPACT_MIN`` of them linger *and* they
    #: make up more than ``COMPACT_FRACTION`` of the heap.
    COMPACT_MIN = 64
    COMPACT_FRACTION = 0.25

    #: Whether this kernel offers event lanes / sync finalizers (see
    #: :class:`~repro.simcore.batched.BatchedScheduler`). Components
    #: check this to decide between per-event and batched code paths.
    supports_batching = False

    def __init__(
        self, start: float = 0.0, telemetry: Telemetry | None = None
    ) -> None:
        self.clock = Clock(start)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._events_fired = 0
        self._running = False
        self._telemetry = telemetry or NULL_TELEMETRY
        self._next_seq = 0
        self._cancelled_pending = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.clock._now

    @property
    def events_fired(self) -> int:
        """Count of events executed so far (for diagnostics/tests)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Raw event-queue size, **including** cancelled events that
        have not been swept yet. Use :attr:`pending_active` for the
        number of events that will actually fire."""
        return len(self._heap)

    @property
    def pending_active(self) -> int:
        """Number of queued events that are not cancelled — the queue
        depth that matters for diagnostics and telemetry."""
        return self.pending - self._cancelled_pending

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still sitting in the heap (diagnostics)."""
        return self._cancelled_pending

    def call_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``.

        Returns the :class:`Event`, which the caller may ``cancel()``.

        Raises:
            SchedulingError: if ``time`` precedes the current clock or is
                not a finite number.
        """
        # Hot path: `time >= now` is False for NaN and past times, so one
        # comparison clears both checks for the common case; the precise
        # error is sorted out only on the slow path.
        now = self.clock._now
        if not time >= now or time == _INF:
            if not _isfinite(time):
                raise SchedulingError(
                    f"event time must be finite, got {time!r}"
                )
            raise SchedulingError(
                f"cannot schedule at {time:.9f} before now={now:.9f}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, callback, scheduler=self)
        _heappush(self._heap, (time, priority, seq, event))
        return event

    def call_in(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SchedulingError(f"delay must be >= 0, got {delay!r}")
        return self.call_at(self.clock._now + delay, callback, priority)

    def peek_time(self) -> float | None:
        """Time of the next non-cancelled event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def peek_callback(self) -> Callable[[], None] | None:
        """Callback of the next event without firing it (``None`` if
        empty). Diagnostic — the profiling census attributes events to
        handler modules with this."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][3].callback

    def step(self) -> bool:
        """Fire the single next event.

        Returns:
            ``True`` if an event fired, ``False`` if the queue was empty.
        """
        self._drop_cancelled()
        if not self._heap:
            return False
        time, _, _, event = heapq.heappop(self._heap)
        event._scheduler = None
        self.clock.advance_to(time)
        self._events_fired += 1
        event.callback()
        return True

    def run_until(self, end_time: float) -> None:
        """Run events until the queue is empty or the next event is after
        ``end_time``; finally advance the clock to ``end_time``.

        Raises:
            SchedulingError: when called re-entrantly from a callback.
        """
        if self._running:
            raise SchedulingError("run_until called re-entrantly")
        self._running = True
        # Hot loop: fused sweep/pop — one cancelled-check and one
        # heappop per event, on tuple entries (C comparisons). The
        # telemetry variant is a separate copy so the disabled path
        # stays free of per-event bookkeeping beyond this one branch.
        heap = self._heap
        clock = self.clock
        pop = heapq.heappop
        telemetry = self._telemetry
        try:
            if not telemetry.enabled:
                while heap:
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        pop(heap)
                        event._scheduler = None
                        self._cancelled_pending -= 1
                        continue
                    time = entry[0]
                    if time > end_time:
                        break
                    pop(heap)
                    event._scheduler = None
                    clock._now = time
                    # Per-event so ``events_fired`` read from inside a
                    # callback is live, matching the telemetry path.
                    self._events_fired += 1
                    event.callback()
            else:
                fired_before = self._events_fired
                max_depth = len(heap) - self._cancelled_pending
                while heap:
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        pop(heap)
                        event._scheduler = None
                        self._cancelled_pending -= 1
                        continue
                    time = entry[0]
                    if time > end_time:
                        break
                    pop(heap)
                    event._scheduler = None
                    clock._now = time
                    self._events_fired += 1
                    event.callback()
                    depth = len(heap) - self._cancelled_pending
                    if depth > max_depth:
                        max_depth = depth
                telemetry.count(
                    "scheduler.events", self._events_fired - fired_before
                )
                prev_max = telemetry.gauges.get(
                    "scheduler.max_queue_depth", 0.0
                )
                telemetry.gauge(
                    "scheduler.max_queue_depth", max(prev_max, max_depth)
                )
            if end_time > clock._now:
                clock.advance_to(end_time)
        finally:
            self._running = False

    def run(self) -> None:
        """Run until the event queue is exhausted."""
        while self.step():
            pass

    # ------------------------------------------------------------------
    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            _, _, _, event = heapq.heappop(heap)
            event._scheduler = None
            self._cancelled_pending -= 1

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the event is queued."""
        count = self._cancelled_pending + 1
        self._cancelled_pending = count
        if (
            count >= self.COMPACT_MIN
            and count > self.pending * self.COMPACT_FRACTION
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries, in place.

        Heap order is fully determined by the ``(time, priority, seq)``
        key, so re-heapifying the surviving entries preserves the exact
        firing order. The list object must stay the same one:
        :meth:`run_until` holds a local alias to ``self._heap``, and
        compaction can run mid-loop when a callback cancels events.

        The cancelled-pending counter is *recomputed* from the rebuilt
        heap rather than assumed: after a compaction — including one
        over a 100%-cancelled heap, where the surviving active set is
        empty — ``pending_active`` must equal the number of entries
        that will actually fire, with nothing stale left behind.
        """
        survivors = []
        for entry in self._heap:
            event = entry[3]
            if event.cancelled:
                event._scheduler = None
            else:
                survivors.append(entry)
        heapq.heapify(survivors)
        self._heap[:] = survivors
        # Survivors are non-cancelled by construction (no callback can
        # run during the rebuild), so the exact count is zero.
        self._cancelled_pending = 0
