"""Deterministic discrete-event scheduler.

This is the heart of the simulation: a binary-heap event queue plus a
:class:`~repro.simcore.clock.Clock`. Components schedule callbacks with
:meth:`Scheduler.call_at` / :meth:`Scheduler.call_in`, and the experiment
driver runs the loop with :meth:`Scheduler.run_until`.

Determinism guarantees:

* events fire in ``(time, priority, scheduling order)`` order;
* the clock advances only inside :meth:`run_until` / :meth:`step`;
* no real time or OS entropy is consulted anywhere in the kernel.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

from ..errors import SchedulingError
from ..telemetry.recorder import NULL_TELEMETRY, Telemetry
from .clock import Clock
from .events import Event


class Scheduler:
    """Event loop for the simulation.

    Example:
        >>> sched = Scheduler()
        >>> fired = []
        >>> _ = sched.call_in(1.0, lambda: fired.append(sched.now))
        >>> sched.run_until(2.0)
        >>> fired
        [1.0]
    """

    def __init__(
        self, start: float = 0.0, telemetry: Telemetry | None = None
    ) -> None:
        self.clock = Clock(start)
        self._heap: list[Event] = []
        self._events_fired = 0
        self._running = False
        self._telemetry = telemetry or NULL_TELEMETRY

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Count of events executed so far (for diagnostics/tests)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events in the queue, including cancelled ones."""
        return len(self._heap)

    def call_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``.

        Returns the :class:`Event`, which the caller may ``cancel()``.

        Raises:
            SchedulingError: if ``time`` precedes the current clock or is
                not a finite number.
        """
        if not math.isfinite(time):
            raise SchedulingError(f"event time must be finite, got {time!r}")
        if time < self.clock.now:
            raise SchedulingError(
                f"cannot schedule at {time:.9f} before now={self.clock.now:.9f}"
            )
        event = Event(time=time, priority=priority, callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def call_in(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SchedulingError(f"delay must be >= 0, got {delay!r}")
        return self.call_at(self.clock.now + delay, callback, priority)

    def peek_time(self) -> float | None:
        """Time of the next non-cancelled event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Fire the single next event.

        Returns:
            ``True`` if an event fired, ``False`` if the queue was empty.
        """
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time)
        self._events_fired += 1
        event.fire()
        return True

    def run_until(self, end_time: float) -> None:
        """Run events until the queue is empty or the next event is after
        ``end_time``; finally advance the clock to ``end_time``.

        Raises:
            SchedulingError: when called re-entrantly from a callback.
        """
        if self._running:
            raise SchedulingError("run_until called re-entrantly")
        self._running = True
        # Hot loop: fused peek/step — one cancelled-sweep and one
        # heappop per event instead of two heap inspections (peek_time
        # sweeps, then step sweeps and pops again). The telemetry
        # variant is a separate copy so the disabled path stays free of
        # per-event bookkeeping beyond this one branch.
        heap = self._heap
        clock = self.clock
        pop = heapq.heappop
        telemetry = self._telemetry
        try:
            if not telemetry.enabled:
                while True:
                    while heap and heap[0].cancelled:
                        pop(heap)
                    if not heap or heap[0].time > end_time:
                        break
                    event = pop(heap)
                    clock.advance_to(event.time)
                    self._events_fired += 1
                    event.fire()
            else:
                fired_before = self._events_fired
                max_depth = len(heap)
                while True:
                    while heap and heap[0].cancelled:
                        pop(heap)
                    if not heap or heap[0].time > end_time:
                        break
                    event = pop(heap)
                    clock.advance_to(event.time)
                    self._events_fired += 1
                    event.fire()
                    if len(heap) > max_depth:
                        max_depth = len(heap)
                telemetry.count(
                    "scheduler.events", self._events_fired - fired_before
                )
                prev_max = telemetry.gauges.get(
                    "scheduler.max_queue_depth", 0.0
                )
                telemetry.gauge(
                    "scheduler.max_queue_depth", max(prev_max, max_depth)
                )
            if end_time > clock.now:
                clock.advance_to(end_time)
        finally:
            self._running = False

    def run(self) -> None:
        """Run until the event queue is exhausted."""
        while self.step():
            pass

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
