"""Kernel backend selection for the event scheduler.

Three interchangeable kernels drive the simulation (see
``docs/running-fast.md``, "Kernel backends"):

* ``heap`` — the binary-heap reference kernel. Golden semantics; every
  other backend is gated on producing bit-identical trajectories.
* ``calendar`` — calendar-queue storage (O(1) amortized insert/pop for
  near-horizon events), same per-event dispatch.
* ``batched`` — heap plus event lanes: link service and pacer release
  chains are precomputed and fired through flat arrays instead of
  per-event heap traffic. The default.

Selection precedence (first hit wins):

1. an explicit kernel name passed to :func:`make_scheduler` (e.g. from
   ``SessionConfig.kernel``);
2. the ``REPRO_KERNEL`` environment variable (set by the CLI's global
   ``--kernel`` flag; inherited by worker processes);
3. :data:`DEFAULT_KERNEL`.
"""

from __future__ import annotations

import enum
import os

from ..errors import ConfigError
from ..telemetry.recorder import Telemetry
from .batched import BatchedScheduler
from .calendar import CalendarScheduler
from .scheduler import Scheduler


class SchedulerBackend(enum.Enum):
    """Selectable event-kernel implementations."""

    HEAP = "heap"
    CALENDAR = "calendar"
    BATCHED = "batched"


#: Valid kernel names, including the "defer to environment" sentinel.
KERNELS = tuple(backend.value for backend in SchedulerBackend)
AUTO_KERNEL = "auto"

#: Kernel used when neither config nor environment picks one.
DEFAULT_KERNEL = SchedulerBackend.BATCHED.value

#: Environment variable consulted for ``auto`` (set by ``--kernel``).
KERNEL_ENV_VAR = "REPRO_KERNEL"

_BACKEND_CLASSES = {
    SchedulerBackend.HEAP: Scheduler,
    SchedulerBackend.CALENDAR: CalendarScheduler,
    SchedulerBackend.BATCHED: BatchedScheduler,
}


def resolve_kernel(kernel: str = AUTO_KERNEL) -> SchedulerBackend:
    """Resolve a kernel name (or ``auto``) to a backend.

    Raises:
        ConfigError: on an unknown kernel name (including one smuggled
            in via ``REPRO_KERNEL``).
    """
    name = kernel
    if name == AUTO_KERNEL:
        name = os.environ.get(KERNEL_ENV_VAR, "") or DEFAULT_KERNEL
    try:
        return SchedulerBackend(name)
    except ValueError:
        raise ConfigError(
            f"unknown scheduler kernel {name!r}; "
            f"expected one of {(AUTO_KERNEL,) + KERNELS}"
        ) from None


def make_scheduler(
    kernel: str = AUTO_KERNEL,
    start: float = 0.0,
    telemetry: Telemetry | None = None,
) -> Scheduler:
    """Construct the scheduler for the chosen (or environment) kernel."""
    backend = resolve_kernel(kernel)
    return _BACKEND_CLASSES[backend](start=start, telemetry=telemetry)
