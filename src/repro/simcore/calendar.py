"""Calendar-queue event scheduler.

A classic calendar queue (Brown 1988) keeps near-future events in a ring
of time buckets — insert and pop-min touch only the bucket a time maps
to, so both are O(1) amortized when the bucket width tracks the mean
event spacing — and spills far-future events (beyond one ring
revolution) into an ordinary binary heap that migrates into the ring as
the scan cursor advances.

:class:`CalendarScheduler` is a drop-in :class:`~repro.simcore.scheduler.
Scheduler` backend: same API, same ``(time, priority, seq)`` firing
order, same lazy-cancellation semantics. The property suite
(``tests/property/test_prop_kernel_backends.py``) pins that heap and
calendar pop identical orders under random insert/cancel/reschedule
streams, including exact-time ties.

Implementation notes:

* Every queued entry is a ``(time, priority, seq, event, abs_bucket)``
  tuple. ``abs_bucket`` is the *absolute* (non-wrapped) bucket index,
  computed once at insert with a fixup loop so that the mapping is the
  exact float floor of ``(time - origin) / width`` — two entries then
  satisfy ``t1 <= t2  =>  bucket1 <= bucket2`` even at bucket-boundary
  rounding edges, which is what makes the bucket-top scan safe.
* Buckets are small heaps. The top of the current bucket is the global
  minimum whenever its ``abs_bucket`` equals the scan cursor: entries in
  other buckets live in strictly later bucket windows, and the spill
  heap only holds entries at least one full revolution away.
* Inserting an event below the scan cursor (always >= ``now``, but the
  cursor may have raced ahead through empty buckets) simply rewinds the
  cursor; rescanning a few empty buckets is cheap and keeps the cursor
  logic obviously correct.
* The ring resizes (width and bucket count) from the live pending set
  when the load factor grows, so bursty workloads keep ~1 event per
  bucket without manual tuning.
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop
from heapq import heappush as _heappush
from typing import Callable

from ..errors import SchedulingError
from .events import Event
from .scheduler import Scheduler, _INF, _isfinite

#: Ring size bounds. The lower bound keeps the modulo cheap on tiny
#: workloads; the upper bound caps memory for degenerate spreads.
_MIN_BUCKETS = 16
_MAX_BUCKETS = 1 << 16

#: Grow the ring once the live ring population exceeds this many
#: entries per bucket on average.
_GROW_LOAD = 2


class CalendarScheduler(Scheduler):
    """Calendar-queue backend for the event loop.

    The inherited ``_heap`` slot is reused as the far-future *spill*
    heap; the ring holds everything within one revolution of the scan
    cursor. All public behaviour (ordering, cancellation accounting,
    telemetry counters) matches the heap reference exactly.
    """

    __slots__ = (
        "_origin",
        "_width",
        "_nbuckets",
        "_buckets",
        "_scan_abs",
        "_ring_count",
    )

    def __init__(self, start: float = 0.0, telemetry=None) -> None:
        super().__init__(start, telemetry)
        self._origin = float(start)
        self._width = 0.01
        self._nbuckets = _MIN_BUCKETS
        self._buckets: list[list[tuple]] = [
            [] for _ in range(self._nbuckets)
        ]
        self._scan_abs = 0
        self._ring_count = 0

    # ------------------------------------------------------------------
    # Queue-size accounting (pending_active derives from ``pending``)
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Raw queued entries (ring + spill), including cancelled."""
        return self._ring_count + len(self._heap)

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def _bucket_index(self, time: float) -> int:
        """Exact float floor of ``(time - origin) / width``.

        The division alone can land one bucket off at segment
        boundaries (one ulp of rounding); the fixup loops canonicalize
        against the same ``origin + k * width`` products the scan uses,
        so insert and scan always agree on membership.
        """
        origin = self._origin
        width = self._width
        index = int((time - origin) / width)
        while origin + index * width > time:
            index -= 1
        while origin + (index + 1) * width <= time:
            index += 1
        return index

    def call_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` (see base class)."""
        now = self.clock._now
        if not time >= now or time == _INF:
            if not _isfinite(time):
                raise SchedulingError(
                    f"event time must be finite, got {time!r}"
                )
            raise SchedulingError(
                f"cannot schedule at {time:.9f} before now={now:.9f}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, callback, scheduler=self)
        self._insert((time, priority, seq, event, self._bucket_index(time)))
        return event

    def _insert(self, entry: tuple) -> None:
        abs_idx = entry[4]
        if abs_idx < self._scan_abs:
            # The cursor raced ahead through empty buckets; rewind so
            # the new entry's bucket is back inside the scan window.
            self._scan_abs = abs_idx
        if abs_idx >= self._scan_abs + self._nbuckets:
            _heappush(self._heap, entry)
            return
        _heappush(self._buckets[abs_idx % self._nbuckets], entry)
        self._ring_count += 1
        if (
            self._ring_count > self._nbuckets * _GROW_LOAD
            and self._nbuckets < _MAX_BUCKETS
        ):
            self._resize()

    # ------------------------------------------------------------------
    # Scan / pop
    # ------------------------------------------------------------------
    def _next_entry(self, limit: float, pop: bool) -> tuple | None:
        """The earliest non-cancelled entry with ``time <= limit``.

        Cancelled entries encountered on the way are dropped (lazy
        cancellation, same observable semantics as the heap backend).
        Returns ``None`` when the queue is empty or the minimum is past
        ``limit``; the scan cursor advance it performed stays valid
        because inserts rewind it when needed.
        """
        spill = self._heap
        buckets = self._buckets
        n = self._nbuckets
        while True:
            scan = self._scan_abs
            horizon = scan + n
            # Pull spilled entries that now fall inside the ring window.
            while spill and spill[0][4] < horizon:
                entry = _heappop(spill)
                _heappush(buckets[entry[4] % n], entry)
                self._ring_count += 1
            if self._ring_count == 0:
                if not spill:
                    return None
                # Jump straight to the spill minimum's revolution.
                self._scan_abs = spill[0][4]
                continue
            bucket = buckets[scan % n]
            if bucket:
                top = bucket[0]
                if top[4] <= scan:
                    event = top[3]
                    # Cancelled heads are swept *before* the limit test,
                    # matching the heap backend exactly: its run loop
                    # pops cancelled heads even when they lie beyond the
                    # horizon, so the `pending`/`cancelled_pending`
                    # diagnostics stay bit-identical across backends.
                    if event.cancelled:
                        _heappop(bucket)
                        self._ring_count -= 1
                        event._scheduler = None
                        self._cancelled_pending -= 1
                        continue
                    if top[0] > limit:
                        return None
                    if pop:
                        _heappop(bucket)
                        self._ring_count -= 1
                        event._scheduler = None
                    return top
            # Bucket holds nothing for this revolution; walk on. The
            # cursor persists across calls (and rewinds on earlier
            # inserts), so sparse stretches are traversed once, not per
            # query.
            self._scan_abs = scan + 1

    # ------------------------------------------------------------------
    # Public loop API (same contracts as the heap backend)
    # ------------------------------------------------------------------
    def peek_time(self) -> float | None:
        """Time of the next non-cancelled event, or ``None`` if empty."""
        entry = self._next_entry(_INF, pop=False)
        return None if entry is None else entry[0]

    def peek_callback(self) -> Callable[[], None] | None:
        """Callback of the next event without firing it (``None`` if
        empty). Diagnostic — see :meth:`Scheduler.peek_callback`."""
        entry = self._next_entry(_INF, pop=False)
        return None if entry is None else entry[3].callback

    def step(self) -> bool:
        """Fire the single next event; ``False`` when the queue is empty."""
        entry = self._next_entry(_INF, pop=True)
        if entry is None:
            return False
        self.clock.advance_to(entry[0])
        self._events_fired += 1
        entry[3].callback()
        return True

    def run_until(self, end_time: float) -> None:
        """Run events up to ``end_time`` then advance the clock to it."""
        if self._running:
            raise SchedulingError("run_until called re-entrantly")
        self._running = True
        clock = self.clock
        telemetry = self._telemetry
        try:
            if not telemetry.enabled:
                while True:
                    entry = self._next_entry(end_time, pop=True)
                    if entry is None:
                        break
                    clock._now = entry[0]
                    self._events_fired += 1
                    entry[3].callback()
            else:
                fired_before = self._events_fired
                max_depth = self.pending_active
                while True:
                    entry = self._next_entry(end_time, pop=True)
                    if entry is None:
                        break
                    clock._now = entry[0]
                    self._events_fired += 1
                    entry[3].callback()
                    depth = self.pending_active
                    if depth > max_depth:
                        max_depth = depth
                telemetry.count(
                    "scheduler.events", self._events_fired - fired_before
                )
                prev_max = telemetry.gauges.get(
                    "scheduler.max_queue_depth", 0.0
                )
                telemetry.gauge(
                    "scheduler.max_queue_depth", max(prev_max, max_depth)
                )
            if end_time > clock._now:
                clock.advance_to(end_time)
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _live_entries(self) -> list[tuple]:
        """All non-cancelled entries, detaching cancelled ones."""
        live = []
        for store in [*self._buckets, self._heap]:
            for entry in store:
                event = entry[3]
                if event.cancelled:
                    event._scheduler = None
                else:
                    live.append(entry)
        return live

    def _rebuild(self, entries: list[tuple]) -> None:
        """Re-bucket ``entries`` under the current width/ring size."""
        self._buckets = [[] for _ in range(self._nbuckets)]
        self._heap.clear()
        self._ring_count = 0
        self._cancelled_pending = 0
        self._scan_abs = self._bucket_index(self.clock._now)
        for time, priority, seq, event, _ in entries:
            self._insert(
                (time, priority, seq, event, self._bucket_index(time))
            )

    def _resize(self) -> None:
        """Retune bucket width to the live pending set and re-bucket."""
        entries = self._live_entries()
        count = len(entries)
        if count >= 2:
            lo = min(entry[0] for entry in entries)
            hi = max(entry[0] for entry in entries)
            span = hi - lo
            if span > 0:
                self._width = span / count
            nbuckets = _MIN_BUCKETS
            while nbuckets < 2 * count and nbuckets < _MAX_BUCKETS:
                nbuckets *= 2
            self._nbuckets = nbuckets
        self._rebuild(entries)

    def _compact(self) -> None:
        """Drop cancelled entries from the ring and spill outright.

        Same invariant as the heap backend: after compaction the active
        set is exactly what remains queued and ``cancelled_pending`` is
        zero — including when *every* entry was cancelled and the active
        set is empty.
        """
        self._rebuild(self._live_entries())

    def _drop_cancelled(self) -> None:
        # The scan in _next_entry prunes cancelled entries lazily; an
        # eager sweep entry point is only kept for API parity.
        self._next_entry(_INF, pop=False)
