"""A Selective Forwarding Unit (SFU) with simulcast layer switching.

Production conferencing rarely re-targets the encoder on a drop; the
sender uploads *simulcast* layers (a high and a low encoding of the
same frames) and the SFU forwards whichever layer fits each receiver's
downlink. Adaptation then means *switching layers*: fast — one keyframe
away — but quantized to the layer ladder (the low layer is a quarter-
resolution stream, not a re-targeted full stream).

:class:`SfuNode` implements the forwarding plane: it terminates the
sender's layers, runs its own GCC on the downlink from the receiver's
TWCC feedback, selects a layer with hysteresis, waits for a keyframe on
the target layer before switching (as real SFUs do), and rewrites
sequence numbers so the receiver sees one coherent stream.
"""

from __future__ import annotations

import copy
from typing import Callable

from ..cc.gcc.gcc import GoogCcController
from ..cc.gcc.overuse import BandwidthUsage
from ..cc.interface import SpanRateSampler
from ..errors import ConfigError
from ..netsim.packet import Packet
from ..rtp.feedback import FeedbackReport, SendHistory
from ..simcore.scheduler import Scheduler
from ..telemetry.recorder import NULL_TELEMETRY, Telemetry

#: A layer fits when the estimate covers its bitrate (libwebrtc picks
#: the highest layer with bitrate <= BWE); upgrading additionally needs
#: UP_FACTOR headroom so the selection doesn't flap.
DOWN_FACTOR = 1.0
UP_FACTOR = 1.1

#: Hold the initial layer this long before trusting the estimate.
WARMUP = 1.0

#: Padding probes: while parked on a lower layer with a clean path, the
#: SFU must *probe* above the forwarded rate or its delivered-rate
#: estimate can never justify an upgrade (libwebrtc uses the same
#: trick). Probes are paced over PROBE_SPAN and sized relative to the
#: current estimate so a probe during a drop stays harmless.
PROBE_INTERVAL = 1.5
#: Probes pad the downlink to ``min(2 × estimate, next-layer need)`` for
#: PROBE_SPAN: estimates compound by doubling until one probe finally
#: *validates* the next layer's rate, at which point the switch fires.
PROBE_SPAN = 0.6
PROBE_VALIDATION_MARGIN = 1.15
#: No probing within this long of an overuse signal, or while the
#: downlink queue is backed up — probing a congested link only digs the
#: hole deeper.
PROBE_BACKOFF = 3.0
PROBE_BACKLOG_GATE = 0.03
PROBE_PACKET_BYTES = 1200

#: How long a pending layer switch may wait for its keyframe before the
#: SFU re-requests one. The original request (or the keyframe itself)
#: can be lost on a congested uplink; without a re-request the switch —
#: and :attr:`SfuNode.pending_layer` — would hang forever. Normal
#: switches complete within one uplink RTT, so this never fires on a
#: healthy path.
PENDING_KEYFRAME_TIMEOUT = 1.0


class SfuNode:
    """Forwards one of several simulcast layers to one receiver."""

    def __init__(
        self,
        scheduler: Scheduler,
        send_downlink: Callable[[Packet], bool],
        request_keyframe: Callable[[str], None],
        layer_rates: dict[str, float],
        initial_layer: str = "hi",
        out_flow: str = "media",
        on_forward: Callable[[str, Packet], None] | None = None,
        downlink_backlog: Callable[[], float] | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if initial_layer not in layer_rates:
            raise ConfigError(f"unknown initial layer {initial_layer!r}")
        if len(layer_rates) < 2:
            raise ConfigError("simulcast needs at least two layers")
        self._scheduler = scheduler
        self._send_downlink = send_downlink
        self._request_keyframe = request_keyframe
        self._layer_rates = dict(layer_rates)
        self._out_flow = out_flow
        self._on_forward = on_forward
        self._downlink_backlog = downlink_backlog
        # Recording never draws RNG or schedules events, so a node with
        # NULL_TELEMETRY is bit-identical to an instrumented one.
        self._telemetry = telemetry
        self._current = initial_layer
        self._pending: str | None = None
        self._pending_since: float = 0.0
        self._out_seq = 0
        self.history = SendHistory()
        # Start with headroom above the initial layer so the warmup
        # estimate doesn't immediately disqualify it.
        self.gcc = GoogCcController(
            initial_bps=layer_rates[initial_layer] * 1.2,
            min_bps=min(layer_rates.values()) * 0.5,
            max_bps=max(layer_rates.values()) * 2.0,
        )
        self.switches: list[tuple[float, str]] = []
        self.forwarded_packets = 0
        self.dropped_layer_packets = 0
        self.probes_sent = 0
        self._started_at: float | None = None
        self._last_probe = float("-inf")
        # Probe results are kept separately from GCC's target: the AIMD
        # cap (1.5 × acked) erases any upward jump between probes on an
        # app-limited downlink, so layer selection trusts
        # max(GCC, probe estimate) and overuse clears the latter.
        self._probe_estimate: float | None = None
        self._overuse_streak = 0
        # Feedback arrivals are counted so a probe can detect that its
        # whole span fell inside a feedback blackout (see
        # :meth:`_complete_probe`).
        self._feedback_count = 0
        self._probe_feedback_mark: int | None = None
        # Probe validation reads the delivered rate over the probe's
        # own arrival span: the now-anchored acked-rate window dilutes
        # a burst that fills only part of it (~0.55× at these spans),
        # making honest lo→hi upgrades fail validation forever.
        self._probe_sampler = SpanRateSampler()
        self.probes_validated = 0
        self.probes_abandoned = 0
        self.keyframe_rerequests = 0

    # ------------------------------------------------------------------
    @property
    def current_layer(self) -> str:
        """The layer currently forwarded."""
        return self._current

    @property
    def pending_layer(self) -> str | None:
        """Layer we want to switch to (waiting for its keyframe)."""
        return self._pending

    # ------------------------------------------------------------------
    def on_uplink_packet(self, layer: str, packet: Packet) -> None:
        """A packet of ``layer`` arrived from the sender."""
        if layer == self._pending:
            # Switch completes at the pending layer's next keyframe.
            if self._is_keyframe_packet(packet):
                self._current = self._pending
                self._pending = None
                self.switches.append((self._scheduler.now, self._current))
                if self._telemetry.enabled:
                    self._telemetry.count("sfu.layer_switches")
        if layer != self._current:
            self.dropped_layer_packets += 1
            return
        if self._on_forward is not None:
            self._on_forward(layer, packet)
        self._forward(packet)

    def on_receiver_feedback(self, report: FeedbackReport) -> None:
        """TWCC feedback from the receiver about the downlink."""
        now = self._scheduler.now
        if self._started_at is None:
            self._started_at = now
        self._feedback_count += 1
        results = self.history.resolve(report)
        self._probe_sampler.on_acks(results)
        self.gcc.on_packet_results(now, results)
        if self.gcc.last_usage is BandwidthUsage.OVERUSE:
            self._overuse_streak += 1
        else:
            self._overuse_streak = 0
        if self._overuse_streak >= 2:
            # Sustained congestion invalidates probe results; a single
            # blip is usually the probe's own transient.
            self._probe_estimate = None
        if self._telemetry.enabled:
            self._telemetry.probe(
                "sfu.selection_estimate", now, self.selection_estimate()
            )
        if now - self._started_at < WARMUP:
            return
        self._select_layer(now)
        self._rekey_stalled_switch(now)
        self._maybe_probe(now)

    def selection_estimate(self) -> float:
        """Bandwidth estimate used for layer selection."""
        probe = self._probe_estimate or 0.0
        return max(self.gcc.target_bps(), probe)

    def on_receiver_pli(self) -> None:
        """The receiver needs a keyframe on whatever we forward."""
        self._request_keyframe(self._current)

    # ------------------------------------------------------------------
    def _select_layer(self, now: float) -> None:
        target = self.selection_estimate()
        ordered = sorted(
            self._layer_rates.items(), key=lambda kv: kv[1], reverse=True
        )
        # Pick the highest layer whose rate fits under the estimate
        # with headroom; hysteresis protects against flapping.
        desired = ordered[-1][0]
        for name, rate in ordered:
            if target >= rate * DOWN_FACTOR:
                desired = name
                break
        if desired == self._current:
            self._pending = None
            return
        desired_rate = self._layer_rates[desired]
        current_rate = self._layer_rates[self._current]
        if desired_rate > current_rate and target < (
            desired_rate * UP_FACTOR
        ):
            return  # not enough headroom to upgrade yet
        if self._pending != desired:
            self._pending = desired
            self._pending_since = now
            # A mid-stream switch needs a fresh keyframe on the target.
            self._request_keyframe(desired)

    def _rekey_stalled_switch(self, now: float) -> None:
        """Re-request the pending layer's keyframe when a switch hangs.

        The original keyframe request — or the keyframe itself — can be
        lost (congested uplink, a request issued right before a
        feedback blackout). Without a re-request the node would hold
        ``pending_layer`` forever and never complete the switch.
        """
        if self._pending is None:
            return
        if now - self._pending_since < PENDING_KEYFRAME_TIMEOUT:
            return
        self._pending_since = now
        self.keyframe_rerequests += 1
        if self._telemetry.enabled:
            self._telemetry.count("sfu.keyframe_rerequests")
        self._request_keyframe(self._pending)

    def _maybe_probe(self, now: float) -> None:
        """Send a padding burst while parked below the top layer on a
        clean path, so the delivered-rate estimate can grow past the
        forwarded bitrate."""
        top = max(self._layer_rates.values())
        if self._layer_rates[self._current] >= top:
            return
        if self.gcc.last_usage is BandwidthUsage.OVERUSE:
            return
        last_overuse = self.gcc.last_overuse_time
        if last_overuse is not None and now - last_overuse < PROBE_BACKOFF:
            return
        if now - self._last_probe < PROBE_INTERVAL:
            return
        if (
            self._downlink_backlog is not None
            and self._downlink_backlog() > PROBE_BACKLOG_GATE
        ):
            return
        self._last_probe = now
        self.probes_sent += 1
        self._probe_feedback_mark = self._feedback_count
        self._probe_sampler.open(now)
        if self._telemetry.enabled:
            self._telemetry.count("sfu.probes_started")
        # Pad toward min(2 × estimate, next layer's requirement): the
        # estimate compounds probe over probe until one validates the
        # upgrade.
        current_rate = self._layer_rates[self._current]
        next_rate = min(
            rate
            for rate in self._layer_rates.values()
            if rate > current_rate
        )
        needed = next_rate * UP_FACTOR * PROBE_VALIDATION_MARGIN
        goal = min(2.0 * self.selection_estimate(), needed)
        probe_rate = max(goal - current_rate, 100_000.0)
        count = int(probe_rate * PROBE_SPAN / (PROBE_PACKET_BYTES * 8))
        count = min(max(count, 4), 200)
        gap = PROBE_SPAN / count
        for index in range(count):
            self._scheduler.call_in(
                index * gap, self._send_padding_packet
            )
        # Evaluate the probe after its packets had time to be acked:
        # a clean probe's delivered rate becomes the new estimate
        # (webrtc's ProbeBitrateEstimator does exactly this).
        self._scheduler.call_in(
            PROBE_SPAN + 0.25, lambda: self._complete_probe(now)
        )

    def _complete_probe(self, probe_start: float) -> None:
        now = self._scheduler.now
        mark = self._probe_feedback_mark
        self._probe_feedback_mark = None
        # Close the span sampler unconditionally so an abandoned probe
        # cannot leak its arrivals into the next one.
        sample = self._probe_sampler.close()
        if mark is not None and self._feedback_count == mark:
            # No feedback arrived across the whole probe span — the
            # probe straddled a feedback blackout. Abandon it outright:
            # the delivered-rate sample is stale, and validating
            # against it could park ``pending_layer`` on a switch the
            # path never acknowledged.
            self._abandon_probe()
            return
        if self._overuse_streak >= 2 or (
            self.gcc.last_usage is BandwidthUsage.OVERUSE
        ):
            # The probe congested the link: discard the result.
            self._abandon_probe()
            return
        if sample is None:
            self._abandon_probe()
            return
        jumped = 0.95 * sample
        if jumped > self.selection_estimate():
            self._probe_estimate = jumped
            self.probes_validated += 1
            if self._telemetry.enabled:
                self._telemetry.count("sfu.probes_validated")
            self._select_layer(now)

    def _abandon_probe(self) -> None:
        self.probes_abandoned += 1
        if self._telemetry.enabled:
            self._telemetry.count("sfu.probes_abandoned")

    def _send_padding_packet(self) -> None:
        padding = Packet(
            size_bytes=PROBE_PACKET_BYTES,
            flow=self._out_flow,
            seq=self._out_seq,
            payload={"padding": True},
        )
        self._out_seq += 1
        padding.send_time = self._scheduler.now
        self.history.on_sent(
            padding.seq, padding.send_time, padding.size_bytes
        )
        self._send_downlink(padding)

    def _forward(self, packet: Packet) -> None:
        clone = copy.copy(packet)
        clone.flow = self._out_flow
        clone.seq = self._out_seq
        self._out_seq += 1
        clone.send_time = self._scheduler.now
        clone.arrival_time = -1.0
        self.history.on_sent(clone.seq, clone.send_time, clone.size_bytes)
        self.forwarded_packets += 1
        self._send_downlink(clone)

    @staticmethod
    def _is_keyframe_packet(packet: Packet) -> bool:
        return (
            isinstance(packet.payload, dict)
            and packet.payload.get("frame_type") == "I"
        )
