"""A simulcast call through an SFU.

Topology::

    sender ──uplink (generous)──► SFU ──downlink (capacity trace)──► receiver
                                   ▲                                    │
                                   └───────── TWCC feedback / PLI ──────┘

The sender encodes every capture twice — a full-resolution "hi" layer
and a quarter-resolution "lo" layer, each at a *fixed* target (that is
the point of simulcast: the encoders never re-target; the SFU adapts by
switching layers). The uplink is over-provisioned, as it typically is
for the publisher of a conference call.

Running the same downlink trace through :class:`SimulcastSession` and a
regular adaptive :class:`~repro.pipeline.session.RtcSession` compares
the production practice (layer switching) with the paper's proposal
(encoder re-targeting): similar reaction speed, very different quality
floor during the drop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codec.encoder import SimulatedEncoder
from ..codec.model import RateDistortionModel
from ..codec.source import VideoSource
from ..errors import ConfigError
from ..netsim.link import Link
from ..netsim.packet import Packet
from ..pipeline.config import NetworkConfig, VideoConfig
from ..pipeline.results import FrameOutcome, SessionResult
from ..rtp.feedback import FeedbackCollector, FeedbackReport
from ..rtp.jitterbuffer import FrameAssembler
from ..rtp.packetizer import Packetizer
from ..simcore.process import PeriodicProcess
from ..simcore.backend import make_scheduler
from ..simcore.rng import RngStreams
from ..traces.bandwidth import BandwidthTrace
from ..traces.content import ContentTrace
from ..units import mbps


@dataclass(frozen=True)
class SimulcastLayer:
    """One simulcast encoding."""

    name: str
    target_bps: float
    resolution_scale: float


@dataclass(frozen=True)
class SimulcastConfig:
    """Simulcast session parameters."""

    network: NetworkConfig
    video: VideoConfig = field(default_factory=VideoConfig)
    layers: tuple[SimulcastLayer, ...] = (
        SimulcastLayer("hi", 1_800_000.0, 1.0),
        SimulcastLayer("lo", 300_000.0, 0.25),
    )
    duration: float = 25.0
    seed: int = 1
    uplink_bps: float = mbps(10)
    uplink_delay: float = 0.01
    feedback_interval: float = 0.05
    grace_period: float = 2.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent values."""
        self.network.validate()
        self.video.validate()
        if len(self.layers) < 2:
            raise ConfigError("simulcast needs at least two layers")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ConfigError("layer names must be unique")
        rates = [layer.target_bps for layer in self.layers]
        if rates != sorted(rates, reverse=True):
            raise ConfigError("layers must be ordered high to low rate")
        if self.duration <= 0 or self.uplink_bps <= 0:
            raise ConfigError("duration and uplink rate must be positive")


class SimulcastSession:
    """Sender (N fixed encoders) → SFU (layer switching) → receiver."""

    def __init__(self, config: SimulcastConfig) -> None:
        config.validate()
        self.config = config
        self.scheduler = make_scheduler()
        self.rng = RngStreams(config.seed)

        video = config.video
        n_frames = int(config.duration * video.fps) + 2
        self.content = ContentTrace(video.content_class, n_frames, self.rng)
        self.source = VideoSource(
            self.content, video.fps, video.width, video.height
        )

        base_model = RateDistortionModel.for_resolution(
            video.width, video.height
        )
        self.encoders: dict[str, SimulatedEncoder] = {}
        self._packetizers: dict[str, Packetizer] = {}
        for layer in config.layers:
            encoder = SimulatedEncoder(
                base_model.at_resolution(layer.resolution_scale),
                video.fps,
                layer.target_bps,
                self.rng,
                rate_control_config=video.rate_control,
                size_noise_sigma=video.size_noise_sigma,
                stream=f"encoder-noise-{layer.name}",
            )
            self.encoders[layer.name] = encoder
            self._packetizers[layer.name] = Packetizer(
                flow=f"layer-{layer.name}"
            )

        # --- network: uplink, downlink, reverse feedback path --------
        net = config.network
        self.uplink = Link(
            self.scheduler,
            BandwidthTrace.constant(config.uplink_bps),
            config.uplink_delay,
            500_000,
            deliver=self._sfu_receive,
        )
        self.downlink = Link(
            self.scheduler,
            net.capacity,
            net.propagation_delay,
            net.queue_bytes,
            deliver=self._receiver_media,
        )
        self.reverse = Link(
            self.scheduler,
            BandwidthTrace.constant(mbps(100)),
            net.propagation_delay,
            64_000,
            deliver=self._sfu_reverse,
        )

        from .node import SfuNode

        self.sfu = SfuNode(
            self.scheduler,
            send_downlink=self.downlink.send,
            request_keyframe=self._request_layer_keyframe,
            layer_rates={
                layer.name: layer.target_bps for layer in config.layers
            },
            initial_layer=config.layers[0].name,
            on_forward=self._record_forwarded_layer,
            downlink_backlog=self.downlink.estimated_queue_delay,
        )

        # --- receiver ---------------------------------------------------
        self.assembler = FrameAssembler(send_pli=self._receiver_send_pli)
        self.collector = FeedbackCollector()
        self._feedback_process = PeriodicProcess(
            self.scheduler, config.feedback_interval, self._send_feedback
        )

        # --- bookkeeping --------------------------------------------
        self._encoded: dict[tuple[str, int], float] = {}  # ssim by layer
        self._display_layer: dict[int, str] = {}
        self._outcomes: dict[int, FrameOutcome] = {}
        self.result = SessionResult(
            policy="simulcast", seed=config.seed, fps=video.fps
        )
        self._capture_process = PeriodicProcess(
            self.scheduler, self.source.frame_interval, self._capture
        )

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------
    def _capture(self, tick: int) -> None:
        now = self.scheduler.now
        if now >= self.config.duration:
            self._capture_process.stop()
            return
        captured = self.source.capture(tick, now)
        outcome = FrameOutcome(
            index=tick,
            capture_time=now,
            complexity=captured.content.complexity,
            motion=captured.content.motion,
        )
        self._outcomes[tick] = outcome
        self.result.frames.append(outcome)
        for name, encoder in self.encoders.items():
            frame = encoder.encode(captured, now)
            self._encoded[(name, tick)] = frame.ssim
            packets = self._packetizers[name].packetize(frame)
            for packet in packets:
                packet.payload = {
                    "frame_type": frame.frame_type.value,
                    "temporal_layer": frame.temporal_layer,
                }
            self.scheduler.call_at(
                frame.encode_done_time,
                lambda ps=packets: self._send_uplink(ps),
            )

    def _send_uplink(self, packets: list[Packet]) -> None:
        for packet in packets:
            packet.send_time = self.scheduler.now
            self.uplink.send(packet)

    def _request_layer_keyframe(self, layer: str) -> None:
        # Keyframe request travels SFU → sender over the control path.
        self.scheduler.call_in(
            self.config.uplink_delay,
            lambda: self.encoders[layer].request_keyframe(),
        )

    # ------------------------------------------------------------------
    # SFU
    # ------------------------------------------------------------------
    def _sfu_receive(self, packet: Packet) -> None:
        layer = packet.flow.removeprefix("layer-")
        self.sfu.on_uplink_packet(layer, packet)

    def _sfu_reverse(self, packet: Packet) -> None:
        if isinstance(packet.payload, FeedbackReport):
            self.sfu.on_receiver_feedback(packet.payload)
        elif packet.payload == "PLI":
            self.sfu.on_receiver_pli()

    def _record_forwarded_layer(self, layer: str, packet: Packet) -> None:
        self._display_layer.setdefault(packet.frame_index, layer)

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def _receiver_media(self, packet: Packet) -> None:
        now = self.scheduler.now
        self.collector.on_packet(packet.seq, now, packet.size_bytes)
        if isinstance(packet.payload, dict) and packet.payload.get(
            "padding"
        ):
            # Probe padding: acked for bandwidth estimation, no media.
            self.assembler.note_seq(packet.seq, now)
            return
        self.assembler.on_packet(packet, now)

    def _send_feedback(self, _tick: int) -> None:
        report = self.collector.build_report(self.scheduler.now)
        if report is None:
            return
        packet = Packet(
            size_bytes=report.wire_size_bytes(),
            flow="feedback",
            payload=report,
        )
        packet.send_time = self.scheduler.now
        self.reverse.send(packet)

    def _receiver_send_pli(self) -> None:
        packet = Packet(size_bytes=80, flow="rtcp", payload="PLI")
        packet.send_time = self.scheduler.now
        self.reverse.send(packet)
        self.result.pli_count += 1

    # ------------------------------------------------------------------
    def run(self) -> SessionResult:
        """Run to completion; the result's SSIM reflects the *forwarded*
        layer of each displayed frame."""
        end = self.config.duration + self.config.grace_period
        self.scheduler.run_until(end)
        self._feedback_process.stop()
        for record in self.assembler.frames():
            outcome = self._outcomes.get(record.index)
            if outcome is None:
                continue
            outcome.complete_time = record.complete_time
            outcome.display_time = record.display_time
            outcome.lost = record.lost
            outcome.undecodable = record.undecodable
            layer = self._display_layer.get(record.index)
            if layer is not None:
                outcome.frame_type = record.frame_type
                outcome.encoded_ssim = self._encoded.get(
                    (layer, record.index), 0.0
                )
        self.result.drop_events = [t for t, _ in self.sfu.switches]
        self.result.finalize()
        return self.result
