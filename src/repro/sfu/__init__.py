"""Simulcast / SFU: production's layer-switching alternative."""

from .node import SfuNode
from .session import SimulcastConfig, SimulcastLayer, SimulcastSession

__all__ = [
    "SfuNode",
    "SimulcastConfig",
    "SimulcastLayer",
    "SimulcastSession",
]
