"""Unit conventions and small conversion helpers.

The whole library uses a single set of base units:

* **time** — seconds, as ``float``
* **data** — bytes, as ``int`` (packet and frame sizes)
* **rate** — bits per second, as ``float``

These helpers exist so that call sites can say what they mean
(``kbps(500)``) instead of sprinkling magic multipliers around.
"""

from __future__ import annotations

#: Bits in a byte; packet sizes are bytes, rates are bits/second.
BITS_PER_BYTE = 8

#: A conventional Ethernet-ish MTU payload budget for RTP (bytes).
DEFAULT_MTU = 1200

#: One millisecond in seconds.
MS = 1e-3

#: One microsecond in seconds.
US = 1e-6


def kbps(value: float) -> float:
    """Convert kilobits per second to bits per second."""
    return value * 1e3


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return value * 1e6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MS


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds."""
    return value * 1e3


def bytes_to_bits(num_bytes: int | float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * BITS_PER_BYTE


def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to (possibly fractional) bytes."""
    return num_bits / BITS_PER_BYTE


def transmission_delay(num_bytes: int | float, rate_bps: float) -> float:
    """Serialization delay of ``num_bytes`` over a link of ``rate_bps``.

    Raises:
        ValueError: if the rate is not strictly positive.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps!r}")
    return bytes_to_bits(num_bytes) / rate_bps
