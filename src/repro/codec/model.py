"""H.264/x264 rate-distortion model.

The simulator does not compress pixels; it models the three relationships
an encoder control loop actually interacts with:

* **size(QP, complexity, frame type)** — how many bits a frame costs.
  H.264's quantizer step doubles every 6 QP
  (``Qstep = 2^((QP-4)/6)``), and empirically rate scales like
  ``Qstep^-alpha`` with ``alpha`` ≈ 1.1–1.3 for P-frames.
* **quality(QP, complexity, motion)** — SSIM/PSNR obtained at that QP.
  PSNR falls roughly linearly in QP (~0.5 dB/QP); SSIM loss grows like a
  power of Qstep.
* **encode time(complexity)** — latency contributed by the encoder.

All three are monotone in QP, which is what the adaptive controller's RD
inversion (:meth:`RateDistortionModel.qp_for_bits`) relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import CodecError
from .frames import FrameType

#: Hoisted members (class-level enum access costs a descriptor call
#: per lookup; the encode path touches these every frame).
_FRAME_I = FrameType.I
_FRAME_P = FrameType.P

#: Valid H.264 QP range.
QP_MIN = 0
QP_MAX = 51


def qp_to_qstep(qp: float) -> float:
    """H.264 quantizer step size for a (possibly fractional) QP."""
    return 2.0 ** ((qp - 4.0) / 6.0)


def qstep_to_qp(qstep: float) -> float:
    """Inverse of :func:`qp_to_qstep`."""
    if qstep <= 0:
        raise CodecError(f"qstep must be positive, got {qstep!r}")
    return 4.0 + 6.0 * math.log2(qstep)


@dataclass(frozen=True)
class RateDistortionModel:
    """Calibrated RD curves for one resolution/content operating point.

    Attributes:
        reference_bits: bits of a complexity-1.0 P-frame at ``Qstep = 1``
            (QP 4). Scales linearly with pixel count.
        alpha_p: rate exponent for P-frames (``bits ∝ Qstep^-alpha``).
        alpha_i: rate exponent for I-frames.
        i_frame_factor: I-frame cost multiple over a P-frame at equal QP.
        ssim_coeff / ssim_exponent: SSIM loss = coeff · Qstep^exponent,
            scaled by content complexity.
        psnr_intercept / psnr_slope: PSNR ≈ intercept − slope · QP.
        resolution_scale: pixel-count fraction relative to the native
            resolution (set < 1 by resolution adaptation).
    """

    reference_bits: float = 920_000.0  # calibrated for 720p30
    alpha_p: float = 1.2
    alpha_i: float = 1.1
    i_frame_factor: float = 5.0
    ssim_coeff: float = 0.0043
    ssim_exponent: float = 0.8
    psnr_intercept: float = 52.0
    psnr_slope: float = 0.5
    encode_time_base: float = 0.004
    encode_time_per_complexity: float = 0.004
    resolution_scale: float = 1.0

    # ------------------------------------------------------------------
    # Size
    # ------------------------------------------------------------------
    def frame_bits(
        self, qp: float, complexity: float, frame_type: FrameType
    ) -> float:
        """Predicted size in bits of a frame encoded at ``qp``."""
        self._check_qp(qp)
        if complexity <= 0:
            raise CodecError(f"complexity must be positive, got {complexity!r}")
        alpha, factor = self._type_params(frame_type)
        qstep = qp_to_qstep(qp)
        return (
            self.reference_bits
            * self.resolution_scale
            * complexity
            * factor
            / qstep**alpha
        )

    def qp_for_bits(
        self, target_bits: float, complexity: float, frame_type: FrameType
    ) -> float:
        """Smallest QP whose predicted size is at most ``target_bits``.

        This is the RD inversion the adaptive controller uses for instant
        re-targeting. The result is clamped to the valid QP range, so a
        budget too small even for QP 51 returns 51.0 (callers can detect
        infeasibility by re-predicting the size).
        """
        if target_bits <= 0:
            raise CodecError(f"target_bits must be positive, got {target_bits!r}")
        alpha, factor = self._type_params(frame_type)
        numer = (
            self.reference_bits * self.resolution_scale * complexity * factor
        )
        qstep = (numer / target_bits) ** (1.0 / alpha)
        qp = qstep_to_qp(qstep)
        return min(max(qp, float(QP_MIN)), float(QP_MAX))

    # ------------------------------------------------------------------
    # Quality
    # ------------------------------------------------------------------
    def ssim(self, qp: float, complexity: float, motion: float) -> float:
        """Structural similarity in [0, 1] for a frame encoded at ``qp``.

        Complex, high-motion content loses more SSIM at the same QP; a
        reduced encode resolution imposes an upscaling penalty.
        """
        self._check_qp(qp)
        qstep = qp_to_qstep(qp)
        content_factor = (0.6 + 0.4 * complexity) * (0.8 + 0.4 * motion)
        loss = self.ssim_coeff * qstep**self.ssim_exponent * content_factor
        # Upscaling a reduced-resolution encode costs structural detail:
        # ~0.06 SSIM for a quarter-resolution stream shown at native size.
        upscale_penalty = 0.08 * (1.0 - self.resolution_scale)
        return max(0.0, min(1.0, 1.0 - loss - upscale_penalty))

    def psnr(self, qp: float, complexity: float) -> float:
        """Peak signal-to-noise ratio in dB."""
        self._check_qp(qp)
        content_penalty = 2.0 * math.log2(max(complexity, 0.05))
        upscale_penalty = 3.0 * (1.0 - self.resolution_scale)
        return (
            self.psnr_intercept
            - self.psnr_slope * qp
            - content_penalty
            - upscale_penalty
        )

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def encode_time(self, complexity: float) -> float:
        """Seconds the encoder spends on one frame."""
        return (
            self.encode_time_base
            + self.encode_time_per_complexity
            * complexity
            * self.resolution_scale
        )

    # ------------------------------------------------------------------
    def at_resolution(self, scale: float) -> "RateDistortionModel":
        """A copy operating at ``scale`` of the native pixel count."""
        if not 0 < scale <= 1:
            raise CodecError(f"resolution scale must be in (0, 1], got {scale!r}")
        return RateDistortionModel(
            reference_bits=self.reference_bits,
            alpha_p=self.alpha_p,
            alpha_i=self.alpha_i,
            i_frame_factor=self.i_frame_factor,
            ssim_coeff=self.ssim_coeff,
            ssim_exponent=self.ssim_exponent,
            psnr_intercept=self.psnr_intercept,
            psnr_slope=self.psnr_slope,
            encode_time_base=self.encode_time_base,
            encode_time_per_complexity=self.encode_time_per_complexity,
            resolution_scale=scale,
        )

    @staticmethod
    def for_resolution(width: int, height: int) -> "RateDistortionModel":
        """A model calibrated by pixel count relative to 1280×720."""
        if width <= 0 or height <= 0:
            raise CodecError("resolution must be positive")
        pixel_ratio = (width * height) / (1280 * 720)
        return RateDistortionModel(reference_bits=920_000.0 * pixel_ratio)

    # ------------------------------------------------------------------
    def _type_params(self, frame_type: FrameType) -> tuple[float, float]:
        if frame_type is _FRAME_I:
            return self.alpha_i, self.i_frame_factor
        return self.alpha_p, 1.0

    @staticmethod
    def _check_qp(qp: float) -> None:
        if not QP_MIN <= qp <= QP_MAX:
            raise CodecError(
                f"QP must be in [{QP_MIN}, {QP_MAX}], got {qp!r}"
            )
