"""Frame types and the encoded-frame record.

An :class:`EncodedFrame` is the unit handed from the encoder to the RTP
packetizer and, ultimately, the unit latency and quality are measured on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class FrameType(Enum):
    """H.264 frame types the model distinguishes (no B-frames in RTC)."""

    I = "I"  # noqa: E741 - the conventional codec name
    P = "P"


@dataclass(slots=True)
class EncodedFrame:
    """Output of the encoder for one captured frame.

    Attributes:
        index: capture order, from 0.
        capture_time: when the camera produced the frame (s).
        encode_done_time: when the bitstream was ready (s).
        frame_type: I or P.
        qp: quantizer used.
        size_bytes: bitstream size.
        target_bits: the budget rate control aimed at (diagnostics).
        complexity: content complexity that produced the size.
        ssim: model quality of the *encoded* frame.
        psnr: model PSNR (dB).
        keyframe_forced: True if a PLI/controller forced this keyframe.
        temporal_layer: 0 for reference frames (T0), 1 for droppable
            enhancement frames (T1) when temporal scalability is on.
    """

    index: int
    capture_time: float
    encode_done_time: float
    frame_type: FrameType
    qp: float
    size_bytes: int
    target_bits: float
    complexity: float
    ssim: float
    psnr: float
    keyframe_forced: bool = False
    temporal_layer: int = 0

    @property
    def size_bits(self) -> int:
        """Size in bits."""
        return self.size_bytes * 8
