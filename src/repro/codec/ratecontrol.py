"""x264-style single-pass ABR rate control (with optional VBV/CBR cap).

This reproduces the *control dynamics* of x264's ``ratecontrol.c`` ABR
path, because those dynamics are exactly what the paper criticizes as
"too slow":

* the per-frame quantizer comes from
  ``qscale = rceq · (cplxr_sum / wanted_bits_window)`` where
  ``rceq = blurred_complexity^(1 - qcompress)``;
* ``cplxr_sum`` accumulates ``actual_bits · qscale / rceq`` and
  ``wanted_bits_window`` accumulates the per-frame bit budget — both with
  a slow exponential decay, so the base operating point converges over a
  *window of seconds*, not frames;
* short-term mismatch is corrected by an **overflow multiplier** clipped
  to ``[0.5, 2.0]`` (at most one qscale doubling per frame), computed
  against an ABR buffer of ``2 · rate_tolerance`` seconds of bits;
* the final QP is clamped to ``±qp_step`` (x264 default 4) around the
  previous frame's QP.

The consequence — measurable in the tests — is that after a target
bitrate drop of, say, 5×, the encoder's *output* bitrate overshoots the
new target for on the order of a second even though ``set_target`` was
called immediately. That overshoot is what fills bottleneck queues.

The adaptive controller escapes this by calling :meth:`renormalize`,
which re-seeds the internal windows at the new operating point — the
"dynamically adjusting codec parameters" knob of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CodecError, ConfigError
from .frames import FrameType

#: Hoisted members (class-level enum access costs a descriptor call
#: per lookup; the encode path touches these every frame).
_FRAME_I = FrameType.I
_FRAME_P = FrameType.P
from .model import QP_MAX, QP_MIN, RateDistortionModel, qp_to_qstep, qstep_to_qp


@dataclass(frozen=True)
class RateControlConfig:
    """Tunables mirroring x264's rate-control options.

    Attributes:
        qcompress: curve compression (x264 ``--qcomp``, default 0.6).
        qp_step: max per-frame QP change (x264 ``--qpstep``, default 4).
        qp_min / qp_max: QP clamp (RTC deployments avoid very low QP).
        rate_tolerance: x264 ``--ratetol``; ABR buffer is
            ``2 · tolerance`` seconds of bits.
        window_decay: per-frame decay of the cumulative windows
            (0.98 ≈ 50-frame ≈ 1.7 s memory at 30 fps).
        complexity_blur: EWMA weight for new complexity samples.
        ip_qp_offset: QP reduction applied to I-frames (ip-ratio ≈ 1.4
            in qscale domain ≈ 3 QP).
        vbv_buffer_seconds: if set, enforce a CBR VBV cap — each frame is
            limited to the bits currently in the VBV buffer.
        vbv_max_frame_fraction: largest share of the VBV buffer one frame
            may take.
    """

    qcompress: float = 0.6
    qp_step: float = 4.0
    qp_min: float = 12.0
    qp_max: float = 48.0
    rate_tolerance: float = 1.0
    window_decay: float = 0.98
    complexity_blur: float = 0.1
    ip_qp_offset: float = 3.0
    vbv_buffer_seconds: float | None = None
    vbv_max_frame_fraction: float = 0.8

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range values."""
        if not 0 <= self.qcompress <= 1:
            raise ConfigError(f"qcompress must be in [0,1], got {self.qcompress!r}")
        if self.qp_step <= 0:
            raise ConfigError(f"qp_step must be positive, got {self.qp_step!r}")
        if not QP_MIN <= self.qp_min < self.qp_max <= QP_MAX:
            raise ConfigError(
                f"need {QP_MIN} <= qp_min < qp_max <= {QP_MAX}, "
                f"got [{self.qp_min}, {self.qp_max}]"
            )
        if self.rate_tolerance <= 0:
            raise ConfigError("rate_tolerance must be positive")
        if not 0 < self.window_decay <= 1:
            raise ConfigError("window_decay must be in (0, 1]")
        if not 0 < self.complexity_blur <= 1:
            raise ConfigError("complexity_blur must be in (0, 1]")
        if self.vbv_buffer_seconds is not None and self.vbv_buffer_seconds <= 0:
            raise ConfigError("vbv_buffer_seconds must be positive")


class X264RateControl:
    """Single-pass ABR controller for the simulated encoder."""

    __slots__ = (
        "_model",
        "_fps",
        "_config",
        "_target_bps",
        "_blurred_complexity",
        "_qp_prev",
        "_total_bits",
        "_total_wanted",
        "_pending_rceq",
        "_pending_qscale",
        "_vbv_fill_bits",
        "_cplxr_sum",
        "_wanted_bits_window",
    )

    def __init__(
        self,
        model: RateDistortionModel,
        fps: float,
        target_bps: float,
        config: RateControlConfig | None = None,
    ) -> None:
        if fps <= 0:
            raise ConfigError(f"fps must be positive, got {fps!r}")
        if target_bps <= 0:
            raise ConfigError(f"target must be positive, got {target_bps!r}")
        self._model = model
        self._fps = fps
        self._config = config or RateControlConfig()
        self._config.validate()
        self._target_bps = target_bps
        self._blurred_complexity = 1.0
        self._qp_prev: float | None = None
        self._total_bits = 0.0
        self._total_wanted = 0.0
        self._pending_rceq: float | None = None
        self._pending_qscale: float | None = None
        self._vbv_fill_bits = 0.0
        if self._config.vbv_buffer_seconds is not None:
            self._vbv_fill_bits = self._vbv_capacity_bits()
        self._seed_windows(target_bps)

    # ------------------------------------------------------------------
    # Public knobs
    # ------------------------------------------------------------------
    @property
    def target_bps(self) -> float:
        """Current target bitrate."""
        return self._target_bps

    @property
    def model(self) -> RateDistortionModel:
        """The RD model used for size prediction."""
        return self._model

    @property
    def last_qp(self) -> float | None:
        """QP of the most recently planned frame."""
        return self._qp_prev

    @property
    def vbv_fullness(self) -> float:
        """Occupancy fraction of the rate buffer (telemetry probe).

        With a configured VBV this is the real buffer fill
        (``1.0`` = full budget available, ``0.0`` = exhausted). Without
        one, x264's ABR overflow buffer (``2 · rate_tolerance`` seconds
        of bits) plays the same role: ``1.0`` when output tracks the
        budget exactly, sinking toward ``0.0`` as cumulative overshoot
        consumes the tolerance (and rising above ``1.0`` on undershoot).
        """
        if self._config.vbv_buffer_seconds is not None:
            capacity = self._vbv_capacity_bits()
            return self._vbv_fill_bits / capacity if capacity > 0 else 0.0
        abr_buffer = 2.0 * self._config.rate_tolerance * self._target_bps
        diff = self._total_bits - self._total_wanted
        return max(0.0, 1.0 - diff / abr_buffer)

    def set_model(self, model: RateDistortionModel) -> None:
        """Swap the RD model (resolution adaptation)."""
        self._model = model

    def set_target(self, target_bps: float) -> None:
        """Change the target bitrate *the x264 way*: only the budget
        accrual rate changes; the internal windows converge gradually.
        """
        if target_bps <= 0:
            raise ConfigError(f"target must be positive, got {target_bps!r}")
        self._target_bps = target_bps

    def renormalize(self, target_bps: float | None = None) -> None:
        """Re-seed the controller at (optionally new) ``target_bps``.

        This is the fast-adaptation knob: it discards the stale windows so
        the very next frame is planned at the new operating point, while
        keeping the blurred complexity estimate (hence compression
        efficiency — the encoder does not panic to QP extremes).
        """
        if target_bps is not None:
            self.set_target(target_bps)
        self._seed_windows(self._target_bps)
        self._total_bits = 0.0
        self._total_wanted = 0.0
        # Let the next frame jump straight to the new operating point.
        self._qp_prev = None

    # ------------------------------------------------------------------
    # Per-frame planning
    # ------------------------------------------------------------------
    def plan_frame(
        self,
        complexity: float,
        frame_type: FrameType,
        qp_override: float | None = None,
        max_bits: float | None = None,
    ) -> float:
        """Choose the QP for the next frame.

        Must be followed by exactly one :meth:`on_frame_encoded` call.

        Args:
            complexity: content complexity of the frame to encode.
            frame_type: I or P.
            qp_override: force this QP (clamped to the configured range),
                bypassing the per-frame ``qp_step`` limit — the adaptive
                controller's fast path.
            max_bits: hard per-frame size cap; if the planned QP would
                exceed it, QP is raised (also bypassing ``qp_step``), the
                same mechanism a tight VBV uses.
        """
        if self._pending_rceq is not None:
            raise CodecError("plan_frame called twice without on_frame_encoded")
        if complexity <= 0:
            raise CodecError(f"complexity must be positive, got {complexity!r}")
        cfg = self._config

        rceq = self._blurred_complexity ** (1.0 - cfg.qcompress)
        qscale = rceq * (self._cplxr_sum / self._wanted_bits_window)

        # Short-term overflow compensation against the ABR buffer.
        abr_buffer = 2.0 * cfg.rate_tolerance * self._target_bps
        diff = self._total_bits - self._total_wanted
        overflow = _clip(1.0 + diff / abr_buffer, 0.5, 2.0)
        qscale *= overflow

        qp = qstep_to_qp(max(qscale, 1e-6))
        if frame_type is _FRAME_I:
            qp -= cfg.ip_qp_offset

        if self._qp_prev is not None:
            qp = _clip(
                qp, self._qp_prev - cfg.qp_step, self._qp_prev + cfg.qp_step
            )
        qp = _clip(qp, cfg.qp_min, cfg.qp_max)

        if qp_override is not None:
            qp = _clip(qp_override, cfg.qp_min, cfg.qp_max)
        if max_bits is not None and max_bits > 0:
            predicted = self._model.frame_bits(qp, complexity, frame_type)
            if predicted > max_bits:
                qp_cap = self._model.qp_for_bits(
                    max_bits, complexity, frame_type
                )
                qp = _clip(max(qp, qp_cap), cfg.qp_min, cfg.qp_max)

        qp = self._apply_vbv(qp, complexity, frame_type)

        self._qp_prev = qp
        self._pending_rceq = rceq
        self._pending_qscale = qp_to_qstep(
            qp + (cfg.ip_qp_offset if frame_type is _FRAME_I else 0.0)
        )
        return qp

    def on_frame_encoded(
        self, bits: float, complexity: float, frame_type: FrameType
    ) -> None:
        """Account the actual encoded size of the planned frame."""
        if self._pending_rceq is None or self._pending_qscale is None:
            raise CodecError("on_frame_encoded without a planned frame")
        cfg = self._config
        budget = self._target_bps / self._fps
        # I-frames are intrinsically larger; normalize their contribution
        # so keyframes do not distort the P-frame operating point.
        effective_bits = bits
        if frame_type is _FRAME_I:
            effective_bits = bits / self._model.i_frame_factor
        self._cplxr_sum = (
            self._cplxr_sum * cfg.window_decay
            + effective_bits * self._pending_qscale / self._pending_rceq
        )
        self._wanted_bits_window = (
            self._wanted_bits_window * cfg.window_decay + budget
        )
        self._total_bits += bits
        self._total_wanted += budget
        self._blurred_complexity += cfg.complexity_blur * (
            complexity - self._blurred_complexity
        )
        if cfg.vbv_buffer_seconds is not None:
            self._vbv_fill_bits = min(
                self._vbv_capacity_bits(),
                self._vbv_fill_bits + budget,
            )
            self._vbv_fill_bits = max(0.0, self._vbv_fill_bits - bits)
        self._pending_rceq = None
        self._pending_qscale = None

    def on_frame_skipped(self) -> None:
        """Account a skipped frame: budget accrues, no bits are spent."""
        cfg = self._config
        budget = self._target_bps / self._fps
        self._wanted_bits_window = (
            self._wanted_bits_window * cfg.window_decay + budget
        )
        self._cplxr_sum *= cfg.window_decay
        self._total_wanted += budget
        if cfg.vbv_buffer_seconds is not None:
            self._vbv_fill_bits = min(
                self._vbv_capacity_bits(), self._vbv_fill_bits + budget
            )

    def expected_bits(self, complexity: float, frame_type: FrameType) -> float:
        """Size the model predicts for the QP :meth:`plan_frame` would
        choose right now (without mutating state)."""
        snapshot = (
            self._qp_prev,
            self._pending_rceq,
            self._pending_qscale,
        )
        qp = self.plan_frame(complexity, frame_type)
        bits = self._model.frame_bits(qp, complexity, frame_type)
        (self._qp_prev, self._pending_rceq, self._pending_qscale) = snapshot
        return bits

    # ------------------------------------------------------------------
    def _apply_vbv(
        self, qp: float, complexity: float, frame_type: FrameType
    ) -> float:
        cfg = self._config
        if cfg.vbv_buffer_seconds is None:
            return qp
        max_bits = max(
            self._vbv_fill_bits * cfg.vbv_max_frame_fraction,
            self._target_bps / self._fps * 0.25,
        )
        predicted = self._model.frame_bits(qp, complexity, frame_type)
        if predicted <= max_bits:
            return qp
        qp_cap = self._model.qp_for_bits(max_bits, complexity, frame_type)
        return _clip(max(qp, qp_cap), cfg.qp_min, cfg.qp_max)

    def _vbv_capacity_bits(self) -> float:
        assert self._config.vbv_buffer_seconds is not None
        return self._config.vbv_buffer_seconds * self._target_bps

    def _seed_windows(self, target_bps: float) -> None:
        """Initialize the windows at the steady-state fixed point for
        ``target_bps`` and the current blurred complexity."""
        cfg = self._config
        budget = target_bps / self._fps
        qp_ideal = self._model.qp_for_bits(
            budget, self._blurred_complexity, _FRAME_P
        )
        qp_ideal = _clip(qp_ideal, cfg.qp_min, cfg.qp_max)
        qscale_ideal = qp_to_qstep(qp_ideal)
        rceq = self._blurred_complexity ** (1.0 - cfg.qcompress)
        # Fixed point: qscale = rceq * cplxr_sum / wanted  =>  seed the
        # ratio at qscale_ideal / rceq with one budget's worth of weight.
        self._wanted_bits_window = budget
        self._cplxr_sum = budget * qscale_ideal / rceq


def _clip(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))
