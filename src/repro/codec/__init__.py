"""x264-like video encoder model.

* :class:`RateDistortionModel` — size/quality/time as functions of QP.
* :class:`X264RateControl` — single-pass ABR dynamics (the "too slow"
  baseline behaviour) with optional VBV and fast-renormalize knob.
* :class:`SimulatedEncoder` — GOP/keyframe logic + noise, the object the
  adaptation strategies steer.
"""

from .encoder import SimulatedEncoder
from .frames import EncodedFrame, FrameType
from .model import (
    QP_MAX,
    QP_MIN,
    RateDistortionModel,
    qp_to_qstep,
    qstep_to_qp,
)
from .ratecontrol import RateControlConfig, X264RateControl
from .source import CapturedFrame, VideoSource

__all__ = [
    "CapturedFrame",
    "EncodedFrame",
    "FrameType",
    "QP_MAX",
    "QP_MIN",
    "RateControlConfig",
    "RateDistortionModel",
    "SimulatedEncoder",
    "VideoSource",
    "X264RateControl",
    "qp_to_qstep",
    "qstep_to_qp",
]
