"""The simulated x264 encoder.

Combines the RD model, rate control, GOP/keyframe logic, and a small
amount of size noise (rate control in a real encoder works on
*predictions*; actual frame sizes deviate, which is why overflow
compensation exists at all).

Control surface used by the adaptation strategies:

* :meth:`set_target_bitrate` — the standard (slow) x264 path.
* :meth:`renormalize` — fast re-seed of rate control at a new target.
* :meth:`set_max_frame_bits` — persistent per-frame size cap.
* :meth:`override_next_qp` — one-shot QP override.
* :meth:`request_keyframe` — PLI handling.
* :meth:`set_resolution_scale` — resolution laddering.
* :meth:`skip_frame` — drop a capture without encoding it.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..simcore.rng import RngStreams
from ..telemetry.recorder import NULL_TELEMETRY, Telemetry
from .frames import EncodedFrame, FrameType

#: Hoisted members (class-level enum access costs a descriptor call
#: per lookup; the encode path touches these every frame).
_FRAME_I = FrameType.I
_FRAME_P = FrameType.P
from .model import RateDistortionModel
from .ratecontrol import RateControlConfig, X264RateControl
from .source import CapturedFrame


class SimulatedEncoder:
    """An x264-like encoder driven one frame at a time."""

    __slots__ = (
        "_base_model",
        "_model",
        "rate_control",
        "_fps",
        "_gop_frames",
        "_scene_cut_keyframes",
        "_noise_sigma",
        "_temporal_layers",
        "_gen",
        "_frames_encoded",
        "_frames_since_key",
        "_keyframe_requested",
        "_max_frame_bits",
        "_next_qp_override",
        "_resolution_scale",
        "_target_scale",
        "_stall_until",
        "_telemetry",
    )

    def __init__(
        self,
        model: RateDistortionModel,
        fps: float,
        target_bps: float,
        rng: RngStreams,
        rate_control_config: RateControlConfig | None = None,
        gop_frames: int | None = None,
        scene_cut_keyframes: bool = True,
        size_noise_sigma: float = 0.08,
        temporal_layers: int = 1,
        stream: str = "encoder-noise",
        telemetry: Telemetry | None = None,
    ) -> None:
        if size_noise_sigma < 0:
            raise ConfigError("size_noise_sigma must be >= 0")
        if gop_frames is not None and gop_frames < 1:
            raise ConfigError(f"gop_frames must be >= 1, got {gop_frames!r}")
        if temporal_layers not in (1, 2):
            raise ConfigError(
                f"temporal_layers must be 1 or 2, got {temporal_layers!r}"
            )
        self._base_model = model
        self._model = model
        self.rate_control = X264RateControl(
            model, fps, target_bps, rate_control_config
        )
        self._fps = fps
        self._gop_frames = gop_frames
        self._scene_cut_keyframes = scene_cut_keyframes
        self._noise_sigma = size_noise_sigma
        self._temporal_layers = temporal_layers
        self._gen = rng.stream(stream)
        self._frames_encoded = 0
        self._frames_since_key = 0
        self._keyframe_requested = False
        self._max_frame_bits: float | None = None
        self._next_qp_override: float | None = None
        self._resolution_scale = 1.0
        self._target_scale = 1.0
        self._stall_until: float | None = None
        self._telemetry = telemetry or NULL_TELEMETRY

    # ------------------------------------------------------------------
    # Control surface
    # ------------------------------------------------------------------
    @property
    def model(self) -> RateDistortionModel:
        """The RD model at the current resolution."""
        return self._model

    @property
    def target_bps(self) -> float:
        """Current rate-control target."""
        return self.rate_control.target_bps

    @property
    def resolution_scale(self) -> float:
        """Current pixel-count fraction of the native resolution."""
        return self._resolution_scale

    @property
    def frames_encoded(self) -> int:
        """Number of frames produced (excludes skips)."""
        return self._frames_encoded

    @property
    def temporal_layers(self) -> int:
        """Configured temporal-layer count (1 or 2)."""
        return self._temporal_layers

    def set_target_bitrate(self, target_bps: float) -> None:
        """Standard x264 reconfig: rate control converges gradually.

        The configured target scale (FEC overhead headroom) applies.
        """
        self.rate_control.set_target(target_bps * self._target_scale)

    def renormalize(self, target_bps: float | None = None) -> None:
        """Fast path: re-seed rate control at the (new) target."""
        scaled = None
        if target_bps is not None:
            scaled = target_bps * self._target_scale
        self.rate_control.renormalize(scaled)

    def set_target_scale(self, scale: float) -> None:
        """Reserve a share of every future target for side overhead
        (FEC parity): the video encodes at ``target × scale``."""
        if not 0 < scale <= 1:
            raise ConfigError(f"target scale must be in (0, 1], got {scale!r}")
        self._target_scale = scale

    def set_max_frame_bits(self, max_bits: float | None) -> None:
        """Persistent per-frame size cap (``None`` clears it)."""
        if max_bits is not None and max_bits <= 0:
            raise ConfigError(f"max_bits must be positive, got {max_bits!r}")
        self._max_frame_bits = max_bits

    def override_next_qp(self, qp: float) -> None:
        """Force the next frame's QP (one shot)."""
        self._next_qp_override = qp

    def request_keyframe(self) -> None:
        """Encode the next frame as an IDR (PLI response)."""
        self._keyframe_requested = True

    def set_resolution_scale(self, scale: float) -> None:
        """Switch the encode resolution (pixel-count fraction)."""
        self._model = self._base_model.at_resolution(scale)
        self._resolution_scale = scale
        self.rate_control.set_model(self._model)

    def set_stall_until(self, until: float | None) -> None:
        """Simulate a hung encoder: frames submitted before ``until``
        finish only after it (fault injection; ``None`` clears)."""
        self._stall_until = until

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, captured: CapturedFrame, now: float) -> EncodedFrame:
        """Encode one captured frame at simulation time ``now``."""
        content = captured.content
        frame_type, forced = self._decide_frame_type(content.scene_cut)
        layer = self._temporal_layer_for(captured.index, frame_type)

        # With two temporal layers, T0 frames predict across a 2-frame
        # gap, which costs extra bits (larger motion residual).
        effective_complexity = content.complexity
        if self._temporal_layers == 2 and layer == 0:
            effective_complexity = min(content.complexity * 1.15, 10.0)

        qp = self.rate_control.plan_frame(
            effective_complexity,
            frame_type,
            qp_override=self._pop_qp_override(),
            max_bits=self._max_frame_bits,
        )
        predicted_bits = self._model.frame_bits(
            qp, effective_complexity, frame_type
        )
        actual_bits = predicted_bits * self._size_noise()
        if self._max_frame_bits is not None:
            # A hard cap is enforced by the encoder even against model
            # noise (real encoders re-quantize trailing macroblocks).
            actual_bits = min(actual_bits, self._max_frame_bits)
        size_bytes = max(64, int(round(actual_bits / 8)))

        self.rate_control.on_frame_encoded(
            size_bytes * 8, effective_complexity, frame_type
        )
        self._frames_encoded += 1
        self._frames_since_key = (
            0 if frame_type is _FRAME_I else self._frames_since_key + 1
        )

        encode_latency = self._model.encode_time(content.complexity)
        done_time = now + encode_latency
        if self._stall_until is not None and now < self._stall_until:
            # The encoder is hung: work submitted during the stall
            # completes in a burst right after it clears.
            done_time = self._stall_until + encode_latency

        telemetry = self._telemetry
        if telemetry.enabled:
            telemetry.probe("encoder.qp", now, qp)
            telemetry.probe("encoder.frame_bytes", now, size_bytes)
            telemetry.probe(
                "encoder.target_frame_bytes",
                now,
                self.rate_control.target_bps / self._fps / 8.0,
            )
            telemetry.probe(
                "encoder.target_bps", now, self.rate_control.target_bps
            )
            telemetry.probe(
                "encoder.vbv_fullness",
                now,
                self.rate_control.vbv_fullness,
            )
            telemetry.count("encoder.frames")
            if frame_type is _FRAME_I:
                telemetry.count("encoder.keyframes")

        return EncodedFrame(
            index=captured.index,
            capture_time=captured.capture_time,
            encode_done_time=done_time,
            frame_type=frame_type,
            qp=qp,
            size_bytes=size_bytes,
            target_bits=self.rate_control.target_bps / self._fps,
            complexity=content.complexity,
            ssim=self._model.ssim(qp, content.complexity, content.motion),
            psnr=self._model.psnr(qp, content.complexity),
            keyframe_forced=forced,
            temporal_layer=layer,
        )

    def skip_frame(self) -> None:
        """Account a deliberately skipped capture."""
        self.rate_control.on_frame_skipped()
        self._telemetry.count("encoder.skips")

    # ------------------------------------------------------------------
    def _decide_frame_type(self, scene_cut: bool) -> tuple[FrameType, bool]:
        if self._frames_encoded == 0:
            return _FRAME_I, False
        if self._keyframe_requested:
            self._keyframe_requested = False
            return _FRAME_I, True
        if self._scene_cut_keyframes and scene_cut:
            return _FRAME_I, False
        if (
            self._gop_frames is not None
            and self._frames_since_key >= self._gop_frames - 1
        ):
            return _FRAME_I, False
        return _FRAME_P, False

    def _temporal_layer_for(
        self, capture_index: int, frame_type: FrameType
    ) -> int:
        """T0/T1 assignment: odd capture slots are the droppable T1
        layer; keyframes are always T0."""
        if self._temporal_layers == 1 or frame_type is _FRAME_I:
            return 0
        return capture_index % 2

    def _pop_qp_override(self) -> float | None:
        override = self._next_qp_override
        self._next_qp_override = None
        return override

    def _size_noise(self) -> float:
        if self._noise_sigma == 0:
            return 1.0
        # Mean-one lognormal so noise does not bias the average bitrate.
        sigma = self._noise_sigma
        return float(
            self._gen.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma)
        )
