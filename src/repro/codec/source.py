"""The video source: camera capture timing plus content lookup.

:class:`VideoSource` binds a frame rate and resolution to a
:class:`~repro.traces.content.ContentTrace`; the session pipeline asks it
for each captured frame in order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..traces.content import ContentTrace, FrameContent


@dataclass(frozen=True)
class CapturedFrame:
    """A raw frame straight off the (simulated) camera."""

    index: int
    capture_time: float
    content: FrameContent


class VideoSource:
    """Fixed-fps camera producing frames described by a content trace."""

    def __init__(
        self,
        content: ContentTrace,
        fps: float = 30.0,
        width: int = 1280,
        height: int = 720,
    ) -> None:
        if fps <= 0:
            raise ConfigError(f"fps must be positive, got {fps!r}")
        if width <= 0 or height <= 0:
            raise ConfigError("resolution must be positive")
        self._content = content
        self.fps = fps
        self.width = width
        self.height = height

    @property
    def frame_interval(self) -> float:
        """Seconds between captures."""
        return 1.0 / self.fps

    def capture(self, index: int, now: float) -> CapturedFrame:
        """The frame captured at tick ``index`` (time ``now``)."""
        return CapturedFrame(
            index=index,
            capture_time=now,
            content=self._content.frame(index),
        )
