"""Fitting the RD model to measured encoder samples.

If you have real ``(QP, frame bits)`` measurements — from x264 logs, for
instance — :func:`fit_rate_model` recovers the
:class:`~repro.codec.model.RateDistortionModel` parameters
(``reference_bits``, ``alpha``) by least squares in log space, since

    log(bits) = log(reference · complexity) − alpha · log(Qstep).

This is how the shipped defaults were produced, and how a user adapts
the simulator to their own encoder build or content domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CodecError
from .frames import FrameType
from .model import RateDistortionModel, qp_to_qstep


@dataclass(frozen=True)
class RateFit:
    """Result of a rate-model fit.

    Attributes:
        reference_bits: bits of a complexity-1 frame at Qstep = 1.
        alpha: rate exponent (``bits ∝ Qstep^-alpha``).
        r_squared: goodness of fit in log space.
        n: sample count.
    """

    reference_bits: float
    alpha: float
    r_squared: float
    n: int


def fit_rate_model(
    qps: list[float] | np.ndarray,
    bits: list[float] | np.ndarray,
    complexities: list[float] | np.ndarray | None = None,
) -> RateFit:
    """Least-squares fit of ``bits = ref · cplx · Qstep^-alpha``.

    Args:
        qps: per-frame quantizer values.
        bits: per-frame encoded sizes in bits.
        complexities: per-frame content complexity (1.0 if omitted).

    Raises:
        CodecError: on fewer than 3 samples, non-positive sizes, or a
            degenerate (single-QP) sample set.
    """
    qp_arr = np.asarray(qps, dtype=float)
    bits_arr = np.asarray(bits, dtype=float)
    if qp_arr.shape != bits_arr.shape:
        raise CodecError("qps and bits must have the same length")
    if qp_arr.size < 3:
        raise CodecError("need at least 3 samples to fit")
    if np.any(bits_arr <= 0):
        raise CodecError("frame sizes must be positive")
    if complexities is None:
        cplx_arr = np.ones_like(qp_arr)
    else:
        cplx_arr = np.asarray(complexities, dtype=float)
        if cplx_arr.shape != qp_arr.shape:
            raise CodecError("complexities must match sample length")
        if np.any(cplx_arr <= 0):
            raise CodecError("complexities must be positive")

    log_qstep = np.log([qp_to_qstep(qp) for qp in qp_arr])
    if np.ptp(log_qstep) < 1e-9:
        raise CodecError("need samples at more than one QP")
    # log(bits/cplx) = log(ref) - alpha * log(qstep)
    y = np.log(bits_arr / cplx_arr)
    design = np.column_stack([np.ones_like(log_qstep), -log_qstep])
    coef, residuals, _, _ = np.linalg.lstsq(design, y, rcond=None)
    log_ref, alpha = float(coef[0]), float(coef[1])

    predicted = design @ coef
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot

    return RateFit(
        reference_bits=float(np.exp(log_ref)),
        alpha=alpha,
        r_squared=r_squared,
        n=int(qp_arr.size),
    )


def model_from_fit(
    fit: RateFit, base: RateDistortionModel | None = None
) -> RateDistortionModel:
    """A model using the fitted rate curve for P-frames (other
    parameters inherited from ``base`` or the defaults)."""
    template = base or RateDistortionModel()
    return RateDistortionModel(
        reference_bits=fit.reference_bits,
        alpha_p=fit.alpha,
        alpha_i=template.alpha_i,
        i_frame_factor=template.i_frame_factor,
        ssim_coeff=template.ssim_coeff,
        ssim_exponent=template.ssim_exponent,
        psnr_intercept=template.psnr_intercept,
        psnr_slope=template.psnr_slope,
        encode_time_base=template.encode_time_base,
        encode_time_per_complexity=template.encode_time_per_complexity,
        resolution_scale=template.resolution_scale,
    )


def calibration_samples_from_model(
    model: RateDistortionModel,
    qps: list[float],
    complexity: float = 1.0,
) -> tuple[list[float], list[float]]:
    """Generate synthetic ``(qp, bits)`` samples from a model — used in
    tests and to demonstrate round-trip fitting."""
    bits = [
        model.frame_bits(qp, complexity, FrameType.P) for qp in qps
    ]
    return list(qps), bits
