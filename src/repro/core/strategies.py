"""Individual adaptation strategies composed by the controller.

Each strategy is one of the "dynamically adjusting codec parameters"
mechanisms the poster proposes, kept separate so the ablation benchmarks
can enable them one at a time:

* :class:`DrainBudgetStrategy` — per-frame bit budgets that reserve a
  share of capacity for draining the bottleneck backlog.
* :class:`SkipStrategy` — drop captures entirely while the backlog is
  severe (bounded, to avoid long freezes).
* :class:`ResolutionLadder` — step the encode resolution down/up when
  the operating point (bits per pixel) leaves the efficient region.
"""

from __future__ import annotations

from ..errors import ConfigError


class DrainBudgetStrategy:
    """Computes per-frame size caps that drain standing queues.

    While backlog remains, every frame may only use
    ``capacity × (1 − drain_share) / fps`` bits, so the remaining share
    of every frame interval shrinks the queue.
    """

    def __init__(self, drain_share: float, fps: float) -> None:
        if not 0 <= drain_share < 1:
            raise ConfigError("drain_share must be in [0, 1)")
        if fps <= 0:
            raise ConfigError("fps must be positive")
        self._drain_share = drain_share
        self._fps = fps

    def frame_budget(
        self, capacity_bps: float, backlog_delay: float
    ) -> float:
        """Bits the next frame may cost given the current backlog."""
        share = 1.0 - self._drain_share if backlog_delay > 0 else 1.0
        return max(1.0, capacity_bps * share / self._fps)


class SkipStrategy:
    """Decides when a capture should not be encoded at all."""

    def __init__(
        self, skip_queue_delay: float, max_consecutive: int
    ) -> None:
        if skip_queue_delay <= 0:
            raise ConfigError("skip_queue_delay must be positive")
        if max_consecutive < 0:
            raise ConfigError("max_consecutive must be >= 0")
        self._threshold = skip_queue_delay
        self._max_consecutive = max_consecutive
        self._consecutive = 0

    @property
    def consecutive_skips(self) -> int:
        """Current run of skipped captures."""
        return self._consecutive

    def should_skip(self, backlog_delay: float) -> bool:
        """True if the next capture should be skipped."""
        if (
            backlog_delay > self._threshold
            and self._consecutive < self._max_consecutive
        ):
            self._consecutive += 1
            return True
        self._consecutive = 0
        return False


class ResolutionLadder:
    """Steps the encode resolution when bitrate per pixel gets too low.

    The ladder is a descending list of pixel-count scales
    (e.g. ``(1.0, 0.5, 0.25)``). Stepping down needs the operating point
    to fall below ``min_bits_per_pixel``; stepping back up needs 4×
    headroom, giving hysteresis so the resolution does not thrash.
    """

    def __init__(
        self,
        ladder: tuple[float, ...],
        min_bits_per_pixel: float,
        native_pixels: int,
        fps: float,
    ) -> None:
        if not ladder:
            raise ConfigError("ladder must not be empty")
        if list(ladder) != sorted(ladder, reverse=True):
            raise ConfigError("ladder must be descending")
        if min_bits_per_pixel <= 0 or native_pixels <= 0 or fps <= 0:
            raise ConfigError("ladder parameters must be positive")
        self._ladder = ladder
        self._min_bpp = min_bits_per_pixel
        self._native_pixels = native_pixels
        self._fps = fps
        self._rung = 0

    @property
    def current_scale(self) -> float:
        """Active pixel-count scale."""
        return self._ladder[self._rung]

    def choose_scale(self, target_bps: float) -> float:
        """Update the rung for the given target bitrate; returns the
        scale to encode at."""
        bits_per_frame = target_bps / self._fps
        while self._rung < len(self._ladder) - 1:
            pixels = self._native_pixels * self._ladder[self._rung]
            if bits_per_frame / pixels < self._min_bpp:
                self._rung += 1
            else:
                break
        while self._rung > 0:
            pixels_up = self._native_pixels * self._ladder[self._rung - 1]
            if bits_per_frame / pixels_up >= 4.0 * self._min_bpp:
                self._rung -= 1
            else:
                break
        return self.current_scale
