"""Configuration for the adaptive encoder controller."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class DetectorConfig:
    """Bandwidth-drop detector tuning.

    Attributes:
        fast_tau / slow_tau: time constants (s) of the fast and slow
            EWMAs over the acked throughput; a kink is declared when
            ``fast < kink_ratio × slow``.
        kink_ratio: throughput-kink sensitivity (lower = less sensitive).
        queue_delay_threshold: sender pacer-queue delay (s) treated as a
            congestion signal.
        queuing_delay_threshold: network one-way queuing delay (s)
            treated as a congestion signal.
        cooldown: minimum spacing (s) between successive drop events.
        use_throughput_kink / use_overuse / use_pacer_queue: enable the
            three detector inputs individually (ablation switches).
    """

    fast_tau: float = 0.15
    slow_tau: float = 2.0
    kink_ratio: float = 0.80
    queue_delay_threshold: float = 0.08
    queuing_delay_threshold: float = 0.06
    cooldown: float = 0.5
    use_throughput_kink: bool = True
    use_overuse: bool = True
    use_pacer_queue: bool = True

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent values."""
        if not 0 < self.fast_tau < self.slow_tau:
            raise ConfigError("need 0 < fast_tau < slow_tau")
        if not 0 < self.kink_ratio < 1:
            raise ConfigError("kink_ratio must be in (0, 1)")
        if min(
            self.queue_delay_threshold,
            self.queuing_delay_threshold,
            self.cooldown,
        ) <= 0:
            raise ConfigError("thresholds and cooldown must be positive")
        if not (
            self.use_throughput_kink
            or self.use_overuse
            or self.use_pacer_queue
        ):
            raise ConfigError("at least one detector signal must be enabled")


@dataclass(frozen=True)
class AdaptiveConfig:
    """Adaptive controller tuning.

    Attributes:
        safety_margin: fraction of the estimated capacity the encoder
            targets right after a drop (leaves headroom to drain).
        drain_share: fraction of capacity reserved for draining backlog
            while an episode is active (per-frame budget is
            ``capacity × (1 − drain_share) / fps``).
        skip_queue_delay: estimated total backlog delay (s) above which
            captures are skipped entirely.
        max_consecutive_skips: never freeze the stream longer than this.
        episode_exit_delay: backlog delay (s) below which the episode
            ends and control returns to normal rate control.
        min_target_bps: floor for any re-target.
        enable_skip / enable_drain_budget / enable_renormalize: strategy
            ablation switches.
        t1_drop_queue_delay: with temporal scalability, drop T1
            (non-reference) captures while the backlog exceeds this —
            a gentler lever than full skips.
        enable_fast_recovery: after an episode, probe the estimate back
            up toward the remembered pre-drop throughput instead of
            waiting for AIMD's ~8%/s ramp (the upward counterpart of
            fast drop adaptation; off by default).
        recovery_probe_interval: spacing between upward probes (s).
        recovery_step: multiplicative probe size.
        recovery_clean_time: the path must be congestion-free this long
            before each probe.
        resolution_ladder: optional descending pixel-count scales for
            sustained low bitrates (empty = resolution fixed).
        min_bits_per_pixel: below this operating point, step down the
            resolution ladder; above 4×, step back up.
    """

    safety_margin: float = 0.85
    drain_share: float = 0.25
    skip_queue_delay: float = 0.20
    max_consecutive_skips: int = 5
    episode_exit_delay: float = 0.02
    min_target_bps: float = 80_000.0
    enable_skip: bool = True
    enable_drain_budget: bool = True
    enable_renormalize: bool = True
    t1_drop_queue_delay: float = 0.12
    enable_fast_recovery: bool = False
    recovery_probe_interval: float = 1.0
    recovery_step: float = 1.25
    recovery_clean_time: float = 0.75
    resolution_ladder: tuple[float, ...] = ()
    min_bits_per_pixel: float = 0.025

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent values."""
        if not 0 < self.safety_margin <= 1:
            raise ConfigError("safety_margin must be in (0, 1]")
        if not 0 <= self.drain_share < 1:
            raise ConfigError("drain_share must be in [0, 1)")
        if self.skip_queue_delay <= 0 or self.episode_exit_delay <= 0:
            raise ConfigError("delay thresholds must be positive")
        if self.t1_drop_queue_delay <= 0:
            raise ConfigError("t1_drop_queue_delay must be positive")
        if self.recovery_probe_interval <= 0 or self.recovery_clean_time <= 0:
            raise ConfigError("recovery timings must be positive")
        if self.recovery_step <= 1.0:
            raise ConfigError("recovery_step must exceed 1.0")
        if self.max_consecutive_skips < 0:
            raise ConfigError("max_consecutive_skips must be >= 0")
        if self.min_target_bps <= 0:
            raise ConfigError("min_target_bps must be positive")
        if any(not 0 < s <= 1 for s in self.resolution_ladder):
            raise ConfigError("resolution scales must be in (0, 1]")
