"""The paper's contribution: fast encoder adaptation to bandwidth drops.

* :class:`DropDetector` — fused sender-side drop detection.
* :class:`AdaptiveEncoderController` — the control loop that renormalizes
  the encoder at the measured post-drop capacity, applies drain budgets
  and bounded frame skips, then returns control to GCC.
"""

from .config import AdaptiveConfig, DetectorConfig
from .controller import AdaptiveEncoderController
from .detector import DropDetector, DropEvent, Ewma, NetworkStateEstimator
from .interface import EncoderAdaptation, FrameDirective
from .strategies import DrainBudgetStrategy, ResolutionLadder, SkipStrategy

__all__ = [
    "AdaptiveConfig",
    "AdaptiveEncoderController",
    "DetectorConfig",
    "DrainBudgetStrategy",
    "DropDetector",
    "DropEvent",
    "EncoderAdaptation",
    "Ewma",
    "FrameDirective",
    "NetworkStateEstimator",
    "ResolutionLadder",
    "SkipStrategy",
]
