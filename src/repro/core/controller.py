"""The adaptive encoder controller — the paper's contribution.

On every feedback batch the :class:`DropDetector` looks for a capacity
drop. When one fires, the controller short-circuits the two slow loops
of the baseline stack:

* **the estimator loop** — instead of waiting for GCC's AIMD to walk
  down, it force-seeds the estimate at the measured post-drop capacity
  (the acked throughput during overload *is* the capacity);
* **the encoder loop** — instead of letting x264's ABR windows converge
  over seconds, it *renormalizes* rate control at the new target, so the
  very next frame is sized correctly.

While the drop *episode* is active the controller additionally applies
per-frame drain budgets and (for severe backlogs) frame skips, then
hands control back to the normal GCC→encoder coupling once the backlog
has drained. Compression efficiency is preserved: no panic keyframes,
no QP oscillation — just a one-step move to the new operating point.
"""

from __future__ import annotations

import math

from ..cc.gcc.gcc import GoogCcController
from ..cc.gcc.overuse import BandwidthUsage
from ..codec.encoder import SimulatedEncoder
from ..codec.frames import EncodedFrame
from ..rtp.feedback import FeedbackReport, PacketResult
from ..rtp.pacer import Pacer
from ..telemetry.recorder import NULL_TELEMETRY, Telemetry
from .config import AdaptiveConfig, DetectorConfig
from .detector import DropDetector, DropEvent
from .interface import EncoderAdaptation, FrameDirective
from .strategies import DrainBudgetStrategy, ResolutionLadder, SkipStrategy


class AdaptiveEncoderController(EncoderAdaptation):
    """Fast encoder adaptation to network bandwidth drops."""

    def __init__(
        self,
        encoder: SimulatedEncoder,
        pacer: Pacer,
        gcc: GoogCcController,
        fps: float,
        config: AdaptiveConfig | None = None,
        detector_config: DetectorConfig | None = None,
        native_pixels: int = 1280 * 720,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._encoder = encoder
        self._pacer = pacer
        self._gcc = gcc
        self._fps = fps
        self._config = config or AdaptiveConfig()
        self._config.validate()
        self.detector = DropDetector(detector_config)
        self._drain = DrainBudgetStrategy(self._config.drain_share, fps)
        self._skip = SkipStrategy(
            self._config.skip_queue_delay, self._config.max_consecutive_skips
        )
        self._ladder: ResolutionLadder | None = None
        if self._config.resolution_ladder:
            self._ladder = ResolutionLadder(
                self._config.resolution_ladder,
                self._config.min_bits_per_pixel,
                native_pixels,
                fps,
            )
        self._episode_active = False
        self._episode_capacity = 0.0
        self._episode_started = 0.0
        self._encoder_has_t1 = encoder.temporal_layers == 2
        self.episodes: list[DropEvent] = []
        self.frames_skipped = 0
        self.t1_frames_dropped = 0
        self.recovery_probes = 0
        self._last_capture_skipped = False
        self._pre_drop_throughput: float | None = None
        self._clean_since = 0.0
        self._last_probe_time = float("-inf")
        self._last_episode_end = float("-inf")
        self._ceiling_updated = 0.0
        self._telemetry = telemetry or NULL_TELEMETRY

    # ------------------------------------------------------------------
    @property
    def config(self) -> AdaptiveConfig:
        """Active configuration."""
        return self._config

    @property
    def episode_active(self) -> bool:
        """Whether a drop episode is being handled right now."""
        return self._episode_active

    # ------------------------------------------------------------------
    # EncoderAdaptation hooks
    # ------------------------------------------------------------------
    def on_feedback(
        self,
        now: float,
        report: FeedbackReport,
        results: list[PacketResult],
    ) -> None:
        """Run detection and manage the episode state machine."""
        self._update_throughput_ceiling(now)
        event = self.detector.update(
            now, self._gcc, results, self._pacer.queue_delay()
        )
        if event is not None:
            self._start_episode(now, event)
            return
        if self._episode_active:
            self._refine_episode(now)
            if self._should_exit_episode(now):
                self._end_episode(now)
        if not self._episode_active:
            if self._config.enable_fast_recovery:
                self._maybe_probe_up(now)
            # Normal operation: track GCC through the standard (slow)
            # encoder path; ramp-ups are gradual anyway.
            target = self._gcc.target_bps()
            self._encoder.set_target_bitrate(target)
            self._pacer.set_target_rate(target)
            self._apply_resolution(target)
        telemetry = self._telemetry
        if telemetry.enabled:
            telemetry.probe(
                "policy.episode_active",
                now,
                1.0 if self._episode_active else 0.0,
            )
            telemetry.probe(
                "policy.backlog_delay", now, self._backlog_delay(now)
            )

    def before_frame(
        self, now: float, capture_index: int = 0
    ) -> FrameDirective:
        """Per-frame strategy application."""
        if not self._episode_active:
            self._last_capture_skipped = False
            return FrameDirective()
        backlog_delay = self._backlog_delay(now)
        if self._config.enable_skip and self._skip.should_skip(backlog_delay):
            self.frames_skipped += 1
            self._last_capture_skipped = True
            self._telemetry.count("policy.frames_skipped")
            return FrameDirective(skip=True)
        if (
            self._encoder_has_t1
            and capture_index % 2 == 1
            and not self._last_capture_skipped
            and backlog_delay > self._config.t1_drop_queue_delay
        ):
            # Drop the non-reference layer — but never two captures in
            # a row, so the stream (and its feedback) keeps flowing.
            self.t1_frames_dropped += 1
            self._last_capture_skipped = True
            self._telemetry.count("policy.t1_frames_dropped")
            return FrameDirective(skip=True)
        self._last_capture_skipped = False
        directive = FrameDirective()
        if self._config.enable_drain_budget:
            directive.max_bits = self._drain.frame_budget(
                self._episode_capacity, backlog_delay
            )
        return directive

    def after_frame(self, now: float, frame: EncodedFrame) -> None:
        """No post-encode bookkeeping needed."""

    # ------------------------------------------------------------------
    # Episode management
    # ------------------------------------------------------------------
    def _update_throughput_ceiling(self, now: float) -> None:
        """Decaying-max filter over the delivered throughput: the level
        fast recovery may probe back toward. The decay (τ ≈ 2 min)
        forgets capacity the path hasn't delivered in a while; probing
        a slightly stale ceiling is safe because a wrong probe trips
        the drop detector and renormalizes right back."""
        slow = self.detector.slow_throughput()
        if slow is None:
            return
        if self._pre_drop_throughput is None:
            self._pre_drop_throughput = slow
            self._ceiling_updated = now
            return
        dt = max(0.0, now - self._ceiling_updated)
        decayed = self._pre_drop_throughput * math.exp(-dt / 120.0)
        self._pre_drop_throughput = max(slow, decayed)
        self._ceiling_updated = now

    def _maybe_probe_up(self, now: float) -> None:
        """Fast recovery: when the path has been clean for a while and
        the target sits well below the remembered pre-drop throughput,
        step the estimate up instead of waiting for AIMD.

        A wrong probe is self-correcting: the very next overload trips
        the detector, which renormalizes back down within a feedback
        round — the same machinery that handles real drops.
        """
        cfg = self._config
        if not self.episodes:
            return  # recovery probing only makes sense after a drop
        clean = (
            self._backlog_delay(now) < cfg.episode_exit_delay
            and self._gcc.last_usage is not BandwidthUsage.OVERUSE
        )
        if not clean:
            self._clean_since = now
            return
        ceiling = self._pre_drop_throughput
        if ceiling is None:
            return
        target = self._gcc.target_bps()
        if target >= 0.9 * ceiling:
            return
        if now - self._clean_since < cfg.recovery_clean_time:
            return
        if now - self._last_probe_time < cfg.recovery_probe_interval:
            return
        self._last_probe_time = now
        bumped = min(target * cfg.recovery_step, 0.9 * ceiling)
        self._gcc.force_estimate(bumped)
        self.recovery_probes += 1
        self._telemetry.count("policy.recovery_probes")

    def _start_episode(self, now: float, event: DropEvent) -> None:
        capacity = event.estimated_capacity_bps
        safe_target = max(
            self._config.min_target_bps,
            self._config.safety_margin * capacity,
        )
        self._episode_active = True
        self._episode_capacity = capacity
        self._episode_started = now
        self.episodes.append(event)
        self._telemetry.count("policy.episodes")
        self._telemetry.probe(
            "policy.episode_capacity_bps", now, capacity
        )
        if self._config.enable_renormalize:
            self._encoder.renormalize(safe_target)
            self._gcc.force_estimate(safe_target)
        else:
            self._encoder.set_target_bitrate(safe_target)
        self._pacer.set_target_rate(safe_target)
        self._apply_resolution(safe_target)

    def _refine_episode(self, now: float) -> None:
        """Keep the capacity estimate fresh while the episode runs."""
        fast = self.detector.fast_throughput()
        if fast is not None and fast > 0:
            self._episode_capacity = fast

    def _should_exit_episode(self, now: float) -> bool:
        return (
            self._backlog_delay(now) < self._config.episode_exit_delay
            and self._gcc.last_usage is not BandwidthUsage.OVERUSE
        )

    def _end_episode(self, now: float) -> None:
        self._episode_active = False
        self._last_episode_end = now
        # Seed GCC at the episode's final capacity view so the post-
        # episode ramp starts from reality rather than a stale estimate.
        safe_target = max(
            self._config.min_target_bps,
            self._config.safety_margin * self._episode_capacity,
        )
        self._gcc.force_estimate(safe_target)

    # ------------------------------------------------------------------
    def _backlog_delay(self, now: float | None = None) -> float:
        """Sender pacer delay plus estimated network queuing delay."""
        return (
            self._pacer.queue_delay()
            + self.detector.network_state.queuing_delay(now)
        )

    def _apply_resolution(self, target_bps: float) -> None:
        if self._ladder is None:
            return
        scale = self._ladder.choose_scale(target_bps)
        if scale != self._encoder.resolution_scale:
            self._encoder.set_resolution_scale(scale)
