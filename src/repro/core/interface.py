"""The adaptation interface every encoder-control policy implements.

The session pipeline drives a policy through four hooks:

* :meth:`EncoderAdaptation.on_feedback` — each TWCC feedback batch;
* :meth:`EncoderAdaptation.before_frame` — right before encoding each
  captured frame; returns a :class:`FrameDirective`;
* :meth:`EncoderAdaptation.after_frame` — with the encoded result;
* :meth:`EncoderAdaptation.on_pli` — receiver asked for a keyframe.

Both the paper's adaptive controller and all baselines implement this,
so experiments differ *only* in policy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..codec.frames import EncodedFrame
from ..rtp.feedback import FeedbackReport, PacketResult


@dataclass
class FrameDirective:
    """What the policy wants for the next frame.

    Attributes:
        skip: do not encode this capture at all.
        max_bits: hard per-frame size cap (None = no cap).
        qp_override: force this QP, bypassing rate-control smoothing.
        force_keyframe: encode an IDR.
    """

    skip: bool = False
    max_bits: float | None = None
    qp_override: float | None = None
    force_keyframe: bool = False


class EncoderAdaptation(ABC):
    """Policy deciding how the encoder tracks the network."""

    @abstractmethod
    def on_feedback(
        self,
        now: float,
        report: FeedbackReport,
        results: list[PacketResult],
    ) -> None:
        """Consume one feedback batch (after congestion control ran)."""

    @abstractmethod
    def before_frame(
        self, now: float, capture_index: int = 0
    ) -> FrameDirective:
        """Decide the directive for the frame about to be encoded.

        ``capture_index`` identifies the capture slot (odd slots carry
        the droppable T1 layer under temporal scalability).
        """

    def after_frame(self, now: float, frame: EncodedFrame) -> None:
        """Observe the encoded frame (optional)."""

    def on_pli(self, now: float) -> None:
        """Receiver requested a keyframe (optional)."""
