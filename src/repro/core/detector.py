"""Bandwidth-drop detection from sender-observable signals.

The detector fuses three independent views of the path, all available at
the sender within roughly one feedback interval of a capacity drop:

1. **Throughput kink** — the acked throughput's fast EWMA falling well
   below its slow EWMA. During overload the acked rate *equals* the new
   capacity, so the kink also *measures* the post-drop capacity.
2. **Delay-gradient overuse** — GCC's trendline/overuse state, exposed
   by :class:`~repro.cc.gcc.GoogCcController`.
3. **Pacer-queue growth** — packets piling up at the sender because the
   wire is slower than the pacing rate.

A :class:`NetworkStateEstimator` additionally tracks one-way queuing
delay (current OWD minus the session-minimum OWD), from which the
controller estimates the bottleneck backlog it must drain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..cc.gcc.gcc import GoogCcController
from ..cc.gcc.overuse import BandwidthUsage
from ..rtp.feedback import PacketResult
from .config import DetectorConfig


@dataclass(frozen=True)
class DropEvent:
    """A detected capacity drop.

    Attributes:
        time: detection time.
        estimated_capacity_bps: best post-drop capacity estimate.
        severity: estimated fraction of capacity lost (0..1).
        signals: names of the inputs that fired ("kink", "overuse",
            "pacer").
    """

    time: float
    estimated_capacity_bps: float
    severity: float
    signals: tuple[str, ...]


class Ewma:
    """Exponentially weighted moving average with a time constant."""

    def __init__(self, tau: float) -> None:
        self._tau = tau
        self._value: float | None = None
        self._last_time: float | None = None

    @property
    def value(self) -> float | None:
        """Current estimate (None before the first sample)."""
        return self._value

    def update(self, sample: float, now: float) -> float:
        """Fold in a sample observed at ``now``."""
        if self._value is None or self._last_time is None:
            self._value = sample
        else:
            dt = max(1e-9, now - self._last_time)
            alpha = 1.0 - math.exp(-dt / self._tau)
            self._value += alpha * (sample - self._value)
        self._last_time = now
        return self._value


@dataclass
class NetworkStateEstimator:
    """One-way-delay bookkeeping from TWCC packet results."""

    base_owd: float = math.inf
    last_owd: float = 0.0
    last_update: float = 0.0
    _owd_window: list[tuple[float, float]] = field(default_factory=list)

    def on_results(self, now: float, results: list[PacketResult]) -> None:
        """Consume acked packets; updates base and current OWD."""
        for result in results:
            if result.lost:
                continue
            owd = result.arrival_time - result.send_time
            self.base_owd = min(self.base_owd, owd)
            self.last_owd = owd
            self.last_update = now

    def queuing_delay(self, now: float | None = None) -> float:
        """Estimated standing queue delay along the path (seconds).

        With ``now`` supplied, the estimate decays for the time elapsed
        since the last sample: an unfed bottleneck queue drains at (at
        least) its service rate, i.e. one second of delay per second —
        without this, a sender that stops transmitting would trust a
        stale worst-case reading forever.
        """
        if math.isinf(self.base_owd):
            return 0.0
        standing = max(0.0, self.last_owd - self.base_owd)
        if now is not None and now > self.last_update:
            standing = max(0.0, standing - (now - self.last_update))
        return standing

    def backlog_bits(self, capacity_bps: float) -> float:
        """Queued bits implied by the queuing delay at ``capacity_bps``."""
        return self.queuing_delay() * max(capacity_bps, 1.0)


class DropDetector:
    """Fuses the three signals into discrete :class:`DropEvent`s."""

    def __init__(
        self,
        config: DetectorConfig | None = None,
    ) -> None:
        self._config = config or DetectorConfig()
        self._config.validate()
        self._fast = Ewma(self._config.fast_tau)
        self._slow = Ewma(self._config.slow_tau)
        self._last_event_time = float("-inf")
        self._pacer_high_streak = 0
        self.network_state = NetworkStateEstimator()
        self.events: list[DropEvent] = []

    @property
    def config(self) -> DetectorConfig:
        """Active configuration."""
        return self._config

    def fast_throughput(self) -> float | None:
        """Fast EWMA of the acked throughput."""
        return self._fast.value

    def slow_throughput(self) -> float | None:
        """Slow EWMA of the acked throughput."""
        return self._slow.value

    # ------------------------------------------------------------------
    def update(
        self,
        now: float,
        gcc: GoogCcController,
        results: list[PacketResult],
        pacer_queue_delay: float,
    ) -> DropEvent | None:
        """Process one feedback batch; returns a new event if one fired."""
        cfg = self._config
        self.network_state.on_results(now, results)
        acked = gcc.acked_bps(now)
        if acked is not None:
            self._fast.update(acked, now)
            self._slow.update(acked, now)

        queuing = self.network_state.queuing_delay()
        pacer_high = pacer_queue_delay > cfg.queue_delay_threshold
        if pacer_high:
            self._pacer_high_streak += 1
        else:
            self._pacer_high_streak = 0

        if now - self._last_event_time < cfg.cooldown:
            return None

        # Gate: a capacity drop necessarily backs data up somewhere. The
        # throughput signals below are only meaningful while the path (or
        # the pacer feeding it) is actually congested — an app-limited
        # flow's delivered rate says nothing about capacity.
        congested = (
            queuing > cfg.queuing_delay_threshold
            or self._pacer_high_streak >= 2
        )
        if not congested:
            return None

        signals: list[str] = []
        fast = self._fast.value
        slow = self._slow.value
        if (
            cfg.use_throughput_kink
            and fast is not None
            and slow is not None
            and fast < cfg.kink_ratio * slow
        ):
            signals.append("kink")
        if cfg.use_overuse and gcc.last_usage is BandwidthUsage.OVERUSE:
            signals.append("overuse")
        if cfg.use_pacer_queue and self._pacer_high_streak >= 2:
            signals.append("pacer")

        if not signals:
            return None

        capacity = self._estimate_capacity(now, gcc)
        if capacity is None:
            return None
        baseline = slow if slow is not None else capacity
        severity = max(0.0, min(1.0, 1.0 - capacity / max(baseline, 1.0)))
        event = DropEvent(
            time=now,
            estimated_capacity_bps=capacity,
            severity=severity,
            signals=tuple(signals),
        )
        self._last_event_time = now
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def _estimate_capacity(
        self, now: float, gcc: GoogCcController
    ) -> float | None:
        """During overload the delivered rate *is* the capacity; prefer
        the fast EWMA, fall back to GCC's acked estimate."""
        candidates = [
            value
            for value in (self._fast.value, gcc.acked_bps(now))
            if value is not None
        ]
        if not candidates:
            return None
        return min(candidates)
