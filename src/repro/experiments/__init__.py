"""Experiment definitions: canonical scenarios plus one module per
table/figure of the reproduced evaluation (see DESIGN.md's index)."""

from . import (
    ablations,
    comparison,
    extensions,
    figures,
    fleet,
    robustness,
    scenarios,
    table1,
)

__all__ = [
    "ablations",
    "comparison",
    "extensions",
    "figures",
    "fleet",
    "robustness",
    "scenarios",
    "table1",
]
