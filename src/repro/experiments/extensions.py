"""Extension experiments beyond the poster's evaluation.

* **Abl. E** — GCC delay estimator: trendline (libwebrtc) vs Kalman
  (original draft).
* **Ext. F** — recovery mechanism under channel loss: PLI-only vs NACK.
* **Ext. G** — bottleneck queue discipline: drop-tail vs CoDel.
* **Ext. H** — fast recovery probing after the drop ends.
* **Ext. I** — collateral audio latency during video overload.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..pipeline.config import NetworkConfig, PolicyName, SessionConfig
from ..pipeline.parallel import run_many
from ..traces.bandwidth import BandwidthTrace
from ..units import mbps
from . import scenarios


@dataclass(frozen=True)
class ExtensionRow:
    """One variant's seed-averaged metrics."""

    variant: str
    mean_latency: float
    p95_latency: float
    mean_ssim: float
    freeze_fraction: float
    pli_count: float
    extra: str = ""


def _averaged_row(
    variant: str,
    configs: list[SessionConfig],
    window: tuple[float, float] | None = None,
    extra: str = "",
) -> ExtensionRow:
    start, end = window if window else (None, None)
    lat, p95, ssim, freeze, pli = [], [], [], [], []
    for result in run_many(configs):
        lat.append(result.mean_latency(start, end))
        p95.append(result.percentile_latency(95, start, end))
        ssim.append(result.mean_displayed_ssim())
        freeze.append(result.freeze_fraction())
        pli.append(result.pli_count)
    return ExtensionRow(
        variant=variant,
        mean_latency=float(np.mean(lat)),
        p95_latency=float(np.mean(p95)),
        mean_ssim=float(np.mean(ssim)),
        freeze_fraction=float(np.mean(freeze)),
        pli_count=float(np.mean(pli)),
        extra=extra,
    )


def estimator_comparison(
    drop_ratio: float = 0.2, seeds: tuple[int, ...] = (1, 2, 3)
) -> list[ExtensionRow]:
    """Abl. E: trendline vs Kalman, baseline and adaptive."""
    rows = []
    for estimator in ("trendline", "kalman"):
        for policy in (PolicyName.WEBRTC, PolicyName.ADAPTIVE):
            configs = [
                dataclasses.replace(
                    scenarios.step_drop_config(drop_ratio, seed=seed),
                    policy=policy,
                    cc_estimator=estimator,
                )
                for seed in seeds
            ]
            rows.append(
                _averaged_row(
                    f"{estimator}/{policy.value}",
                    configs,
                    window=scenarios.DROP_WINDOW,
                )
            )
    return rows


def recovery_mechanism_comparison(
    loss: float = 0.02,
    seeds: tuple[int, ...] = (1, 2, 3),
    rtt: float = 0.04,
) -> list[ExtensionRow]:
    """Ext. F: loss recovery — PLI-only vs NACK vs FEC vs both."""
    rows = []
    variants = (
        ("PLI only", False, False),
        ("NACK", True, False),
        ("FEC", False, True),
        ("FEC+NACK", True, True),
    )
    for label, nack, fec in variants:
        configs = [
            SessionConfig(
                network=NetworkConfig(
                    capacity=BandwidthTrace.constant(mbps(2)),
                    queue_bytes=scenarios.QUEUE_BYTES,
                    iid_loss=loss,
                    propagation_delay=rtt / 2,
                ),
                policy=PolicyName.WEBRTC,
                duration=15.0,
                seed=seed,
                enable_nack=nack,
                enable_fec=fec,
            )
            for seed in seeds
        ]
        rows.append(_averaged_row(label, configs))
    return rows


def aqm_comparison(
    drop_ratio: float = 0.2, seeds: tuple[int, ...] = (1, 2, 3)
) -> list[ExtensionRow]:
    """Ext. G: drop-tail vs CoDel under both policies."""
    rows = []
    for aqm in ("droptail", "codel"):
        for policy in (PolicyName.WEBRTC, PolicyName.ADAPTIVE):
            configs = []
            for seed in seeds:
                config = scenarios.step_drop_config(drop_ratio, seed=seed)
                network = dataclasses.replace(config.network, aqm=aqm)
                configs.append(
                    dataclasses.replace(
                        config, network=network, policy=policy
                    )
                )
            rows.append(
                _averaged_row(
                    f"{aqm}/{policy.value}",
                    configs,
                    window=scenarios.DROP_WINDOW,
                )
            )
    return rows


@dataclass(frozen=True)
class RecoveryRow:
    """Fast-recovery probing outcome."""

    variant: str
    post_recovery_bitrate: float
    post_recovery_latency: float
    post_recovery_ssim: float


def fast_recovery_comparison(
    drop_ratio: float = 0.2, seeds: tuple[int, ...] = (1, 2, 3)
) -> list[RecoveryRow]:
    """Ext. H: AIMD-only vs probing, measured after capacity returns."""
    variants = ((False, "AIMD ramp"), (True, "fast probe"))
    batch = [
        dataclasses.replace(
            scenarios.step_drop_config(drop_ratio, seed=seed),
            policy=PolicyName.ADAPTIVE,
            duration=35.0,
            adaptive=dataclasses.replace(
                scenarios.ADAPTIVE_TUNING,
                enable_fast_recovery=enabled,
            ),
        )
        for enabled, _ in variants
        for seed in seeds
    ]
    results = iter(run_many(batch))
    rows = []
    for enabled, label in variants:
        bitrate, latency, ssim = [], [], []
        for _ in seeds:
            result = next(results)
            bitrate.append(result.sent_bitrate_bps(25, 35))
            latency.append(result.mean_latency(25, 35))
            ssim.append(result.mean_displayed_ssim(25, 35))
        rows.append(
            RecoveryRow(
                variant=label,
                post_recovery_bitrate=float(np.mean(bitrate)),
                post_recovery_latency=float(np.mean(latency)),
                post_recovery_ssim=float(np.mean(ssim)),
            )
        )
    return rows


@dataclass(frozen=True)
class AudioRow:
    """Audio collateral damage during the video drop."""

    policy: str
    steady_audio_latency: float
    drop_audio_latency: float
    audio_loss: float


def audio_impact(
    drop_ratio: float = 0.2, seeds: tuple[int, ...] = (1, 2, 3)
) -> list[AudioRow]:
    """Ext. I: what the video overload does to the audio flow."""
    policies = (PolicyName.WEBRTC, PolicyName.ADAPTIVE)
    batch = [
        dataclasses.replace(
            scenarios.step_drop_config(drop_ratio, seed=seed),
            policy=policy,
            enable_audio=True,
        )
        for policy in policies
        for seed in seeds
    ]
    results = iter(run_many(batch))
    rows = []
    for policy in policies:
        steady, drop, loss = [], [], []
        for _ in seeds:
            result = next(results)
            steady.append(result.mean_audio_latency(2, 9))
            drop.append(
                result.mean_audio_latency(*scenarios.DROP_WINDOW)
            )
            loss.append(result.audio_loss_fraction())
        rows.append(
            AudioRow(
                policy=policy.value,
                steady_audio_latency=float(np.mean(steady)),
                drop_audio_latency=float(np.mean(drop)),
                audio_loss=float(np.mean(loss)),
            )
        )
    return rows


@dataclass(frozen=True)
class FairnessRow:
    """Two flows sharing the bottleneck across a drop."""

    pairing: str
    rate_a: float
    rate_b: float
    fairness: float
    latency_a: float
    latency_b: float


def fairness_comparison(
    seeds: tuple[int, ...] = (1, 2, 3)
) -> list[FairnessRow]:
    """Ext. J: policy pairings over one shared bottleneck.

    4 Mbps link dropping to 1 Mbps; post-drop throughput split and
    drop-window latency per flow.
    """
    from ..traces.generators import step_drop
    from .scenarios import QUEUE_BYTES
    from ..pipeline.multiflow import MultiFlowSession, jain_fairness

    pairings = [
        ("webrtc+webrtc", [PolicyName.WEBRTC, PolicyName.WEBRTC]),
        ("adaptive+adaptive", [PolicyName.ADAPTIVE, PolicyName.ADAPTIVE]),
        ("adaptive+webrtc", [PolicyName.ADAPTIVE, PolicyName.WEBRTC]),
    ]
    rows = []
    for label, policies in pairings:
        rate_a, rate_b, fair, lat_a, lat_b = [], [], [], [], []
        for seed in seeds:
            config = SessionConfig(
                network=NetworkConfig(
                    capacity=step_drop(mbps(4), mbps(1), 12.0, 10.0),
                    queue_bytes=200_000,
                ),
                duration=30.0,
                seed=seed,
            )
            results = MultiFlowSession(config, policies=policies).run()
            rates = [r.sent_bitrate_bps(20, 30) for r in results]
            rate_a.append(rates[0])
            rate_b.append(rates[1])
            fair.append(jain_fairness(rates))
            lat_a.append(results[0].mean_latency(12, 18))
            lat_b.append(results[1].mean_latency(12, 18))
        rows.append(
            FairnessRow(
                pairing=label,
                rate_a=float(np.mean(rate_a)),
                rate_b=float(np.mean(rate_b)),
                fairness=float(np.mean(fair)),
                latency_a=float(np.mean(lat_a)),
                latency_b=float(np.mean(lat_b)),
            )
        )
    return rows


def format_fairness_rows(rows: list[FairnessRow], title: str) -> str:
    """Aligned text table for the fairness experiment."""
    header = (
        f"{'pairing':<20} {'rate A':>9} {'rate B':>9} {'Jain':>6} "
        f"{'lat A':>9} {'lat B':>9}"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.pairing:<20} "
            f"{row.rate_a / 1e3:>6.0f}kbps "
            f"{row.rate_b / 1e3:>6.0f}kbps "
            f"{row.fairness:>6.3f} "
            f"{row.latency_a * 1e3:>7.1f}ms "
            f"{row.latency_b * 1e3:>7.1f}ms"
        )
    return "\n".join(lines)


def format_extension_rows(
    rows: list[ExtensionRow], title: str
) -> str:
    """Aligned text table for :class:`ExtensionRow` lists."""
    header = (
        f"{'variant':<22} {'mean lat':>10} {'p95 lat':>10} "
        f"{'SSIM':>8} {'freeze':>7} {'PLI':>6}"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.variant:<22} "
            f"{row.mean_latency * 1e3:>8.1f}ms "
            f"{row.p95_latency * 1e3:>8.1f}ms "
            f"{row.mean_ssim:>8.4f} "
            f"{row.freeze_fraction:>7.3f} "
            f"{row.pli_count:>6.1f}"
        )
    return "\n".join(lines)
