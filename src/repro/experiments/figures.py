"""Figure data generators (the poster's plots, as data series).

Each function returns plain data (lists/dicts of series); the benchmark
harness prints them and tests assert on their shape. No plotting
dependency is required — the series are the reproduction artifact.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..metrics.latency import cdf
from ..pipeline.config import PolicyName, SessionConfig
from ..pipeline.parallel import run_many
from ..pipeline.results import SessionResult
from ..pipeline.supervisor import failure_label, split_failures
from . import scenarios


@dataclass
class Series:
    """One plotted line.

    ``failed`` is ``None`` on the normal path; under supervised
    execution a quarantined source session produces an empty series
    carrying the ``FAILED(<reason>)`` marker instead of aborting the
    figure.
    """

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)
    failed: str | None = None


def _failed_series(name: str, failures) -> Series:
    return Series(name=name, failed=failure_label(failures))


def _latency_timeline(result: SessionResult) -> Series:
    series = Series(name=f"latency[{result.policy}]")
    for outcome in result.frames:
        latency = outcome.latency()
        if latency is not None:
            series.x.append(outcome.capture_time)
            series.y.append(latency)
    return series


# ----------------------------------------------------------------------
# Figure 1 — motivation: bitrate/capacity mismatch creates the spike
# ----------------------------------------------------------------------
def figure1(
    drop_ratio: float = 0.2, seed: int = 1
) -> dict[str, Series]:
    """Baseline timeline: capacity, CC target, and frame latency."""
    config = scenarios.step_drop_config(drop_ratio, seed=seed)
    [result] = run_many(
        [dataclasses.replace(config, policy=PolicyName.WEBRTC)]
    )
    _ok, failures = split_failures([result])
    if failures:
        return {
            name: _failed_series(name, failures)
            for name in ("capacity", "target", "latency")
        }
    capacity = Series(name="capacity")
    target = Series(name="gcc_target")
    for sample in result.timeseries:
        capacity.x.append(sample.time)
        capacity.y.append(sample.capacity_bps)
        target.x.append(sample.time)
        target.y.append(sample.target_bps)
    return {
        "capacity": capacity,
        "target": target,
        "latency": _latency_timeline(result),
    }


# ----------------------------------------------------------------------
# Figure 2 — frame latency timeline, baseline vs adaptive
# ----------------------------------------------------------------------
def figure2(
    drop_ratio: float = 0.2, seed: int = 1
) -> dict[str, Series]:
    """Latency over time for both policies on the same drop."""
    config = scenarios.step_drop_config(drop_ratio, seed=seed)
    base, adap = run_many(
        [
            dataclasses.replace(config, policy=PolicyName.WEBRTC),
            dataclasses.replace(config, policy=PolicyName.ADAPTIVE),
        ]
    )
    out: dict[str, Series] = {}
    for name, result in (("baseline", base), ("adaptive", adap)):
        _ok, failures = split_failures([result])
        out[name] = (
            _failed_series(name, failures)
            if failures
            else _latency_timeline(result)
        )
    return out


# ----------------------------------------------------------------------
# Figure 3 — latency CDF over a multi-drop session
# ----------------------------------------------------------------------
def figure3(seed: int = 1) -> dict[str, Series]:
    """Per-frame latency CDFs across five drops of mixed severity."""
    config = scenarios.multi_drop_config(seed=seed)
    policies = (PolicyName.WEBRTC, PolicyName.ADAPTIVE)
    results = run_many(
        [dataclasses.replace(config, policy=p) for p in policies]
    )
    out: dict[str, Series] = {}
    for policy, result in zip(policies, results):
        name = f"latency_cdf[{policy.value}]"
        _ok, failures = split_failures([result])
        if failures:
            out[policy.value] = _failed_series(name, failures)
            continue
        values, probs = cdf(result.latencies())
        out[policy.value] = Series(
            name=name,
            x=[float(v) for v in values],
            y=[float(p) for p in probs],
        )
    return out


# ----------------------------------------------------------------------
# Figure 4 — reduction & quality delta vs drop severity
# ----------------------------------------------------------------------
def figure4(
    ratios: tuple[float, ...] = (0.8, 0.6, 0.45, 0.3, 0.2, 0.12),
    seeds: tuple[int, ...] = (1, 2, 3),
) -> dict[str, Series]:
    """Sweep severity; x = surviving capacity fraction."""
    start, end = scenarios.DROP_WINDOW
    reduction = Series(name="latency_reduction_pct")
    ssim_change = Series(name="ssim_change_pct")
    batch: list[SessionConfig] = []
    for ratio in ratios:
        for seed in seeds:
            config = scenarios.step_drop_config(ratio, seed=seed)
            batch.append(
                dataclasses.replace(config, policy=PolicyName.WEBRTC)
            )
            batch.append(
                dataclasses.replace(config, policy=PolicyName.ADAPTIVE)
            )
    results = run_many(batch)
    cursor = 0
    failed_points: list = []
    for ratio in ratios:
        reds, dss = [], []
        point = results[cursor:cursor + 2 * len(seeds)]
        _ok, failures = split_failures(point)
        if failures:
            # Skip the severity point but keep the sweep going.
            failed_points.extend(failures)
            cursor += 2 * len(seeds)
            continue
        for _ in seeds:
            base, adap = results[cursor], results[cursor + 1]
            cursor += 2
            reds.append(
                (1 - adap.mean_latency(start, end)
                 / base.mean_latency(start, end)) * 100
            )
            dss.append(
                (adap.mean_displayed_ssim()
                 / base.mean_displayed_ssim() - 1) * 100
            )
        reduction.x.append(ratio)
        reduction.y.append(float(np.mean(reds)))
        ssim_change.x.append(ratio)
        ssim_change.y.append(float(np.mean(dss)))
    if failed_points:
        # Surviving points keep their data; the marker records the gap.
        marker = failure_label(failed_points)
        reduction.failed = marker
        ssim_change.failed = marker
    return {"reduction": reduction, "ssim_change": ssim_change}
