"""Ablations over the adaptive controller's design choices.

* **Ablation A** — detector signals: each of the three inputs alone vs
  the fused detector.
* **Ablation B** — strategies: renormalize only, + drain budget, + skip.
* **Ablation C** — sensitivity to RTT and feedback interval.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..core.config import AdaptiveConfig, DetectorConfig
from ..pipeline.config import PolicyName, SessionConfig
from ..pipeline.parallel import run_many
from ..pipeline.results import SessionResult
from ..pipeline.supervisor import failure_label, split_failures
from ..units import ms
from . import scenarios


@dataclass(frozen=True)
class AblationRow:
    """Latency/quality of one controller variant on one scenario.

    ``failed`` is ``None`` on the normal path; under supervised
    execution a quarantined session yields NaN metrics plus the
    ``FAILED(<reason>)`` marker.
    """

    variant: str
    mean_latency: float
    p95_latency: float
    mean_ssim: float
    failed: str | None = None


def _variant_configs(
    drop_ratio: float,
    seeds: tuple[int, ...],
    adaptive: AdaptiveConfig | None = None,
    detector: DetectorConfig | None = None,
    rtt: float | None = None,
    feedback_interval: float | None = None,
) -> list[SessionConfig]:
    configs = []
    for seed in seeds:
        config = scenarios.step_drop_config(drop_ratio, seed=seed)
        config = dataclasses.replace(config, policy=PolicyName.ADAPTIVE)
        if adaptive is not None:
            config = dataclasses.replace(config, adaptive=adaptive)
        if detector is not None:
            config = dataclasses.replace(config, detector=detector)
        if rtt is not None:
            config = scenarios.with_rtt(config, rtt)
        if feedback_interval is not None:
            config = dataclasses.replace(
                config, feedback_interval=feedback_interval
            )
        configs.append(config)
    return configs


def _averaged_row(variant: str, results: list[SessionResult]) -> AblationRow:
    _ok, failures = split_failures(results)
    if failures:
        nan = float("nan")
        return AblationRow(
            variant=variant,
            mean_latency=nan,
            p95_latency=nan,
            mean_ssim=nan,
            failed=failure_label(failures),
        )
    start, end = scenarios.DROP_WINDOW
    lat, p95, ssim = [], [], []
    for result in results:
        lat.append(result.mean_latency(start, end))
        p95.append(result.percentile_latency(95, start, end))
        ssim.append(result.mean_displayed_ssim())
    return AblationRow(
        variant=variant,
        mean_latency=float(np.mean(lat)),
        p95_latency=float(np.mean(p95)),
        mean_ssim=float(np.mean(ssim)),
    )


def _run_variants(
    named_configs: list[tuple[str, list[SessionConfig]]],
) -> list[AblationRow]:
    """Run every variant's sessions as one batch; one row per variant."""
    batch = [c for _, configs in named_configs for c in configs]
    results = run_many(batch)
    rows, cursor = [], 0
    for name, configs in named_configs:
        rows.append(
            _averaged_row(name, results[cursor:cursor + len(configs)])
        )
        cursor += len(configs)
    return rows


def detector_ablation(
    drop_ratio: float = 0.2,
    seeds: tuple[int, ...] = (1, 2, 3),
) -> list[AblationRow]:
    """Ablation A: individual detector signals vs the fusion."""
    variants = [
        ("kink only", DetectorConfig(
            use_throughput_kink=True, use_overuse=False,
            use_pacer_queue=False)),
        ("overuse only", DetectorConfig(
            use_throughput_kink=False, use_overuse=True,
            use_pacer_queue=False)),
        ("pacer only", DetectorConfig(
            use_throughput_kink=False, use_overuse=False,
            use_pacer_queue=True)),
        ("fused (all)", DetectorConfig()),
    ]
    return _run_variants(
        [
            (name, _variant_configs(drop_ratio, seeds, detector=det))
            for name, det in variants
        ]
    )


def strategy_ablation(
    drop_ratio: float = 0.2,
    seeds: tuple[int, ...] = (1, 2, 3),
) -> list[AblationRow]:
    """Ablation B: build the controller up one strategy at a time."""
    base = scenarios.ADAPTIVE_TUNING
    variants = [
        ("renormalize only", dataclasses.replace(
            base, enable_drain_budget=False, enable_skip=False)),
        ("+ drain budget", dataclasses.replace(base, enable_skip=False)),
        ("+ skip (full)", base),
        ("no renormalize", dataclasses.replace(
            base, enable_renormalize=False)),
    ]
    return _run_variants(
        [
            (name, _variant_configs(drop_ratio, seeds, adaptive=cfg))
            for name, cfg in variants
        ]
    )


def rtt_sensitivity(
    drop_ratio: float = 0.2,
    rtts: tuple[float, ...] = (ms(20), ms(40), ms(80), ms(160)),
    seeds: tuple[int, ...] = (1, 2, 3),
) -> list[AblationRow]:
    """Ablation C1: detection/feedback delay grows with RTT."""
    return _run_variants(
        [
            (
                f"rtt={rtt * 1e3:.0f}ms",
                _variant_configs(drop_ratio, seeds, rtt=rtt),
            )
            for rtt in rtts
        ]
    )


def feedback_interval_sensitivity(
    drop_ratio: float = 0.2,
    intervals: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2),
    seeds: tuple[int, ...] = (1, 2, 3),
) -> list[AblationRow]:
    """Ablation C2: TWCC cadence bounds reaction time."""
    return _run_variants(
        [
            (
                f"fb={interval * 1e3:.0f}ms",
                _variant_configs(
                    drop_ratio, seeds, feedback_interval=interval
                ),
            )
            for interval in intervals
        ]
    )


def queue_depth_sensitivity(
    drop_ratio: float = 0.2,
    queue_bytes: tuple[int, ...] = (70_000, 140_000, 280_000, 560_000),
    seeds: tuple[int, ...] = (1, 2, 3),
) -> list[tuple[str, AblationRow, AblationRow]]:
    """Ablation D: how the headline depends on bottleneck buffer depth.

    Returns (label, baseline row, adaptive row) per depth — deeper
    buffers absorb more overload as latency (taller baseline spikes,
    no loss); shallow buffers convert it to loss and PLI storms.
    """
    batch: list[SessionConfig] = []
    for depth in queue_bytes:
        for policy in (PolicyName.WEBRTC, PolicyName.ADAPTIVE):
            for seed in seeds:
                config = scenarios.step_drop_config(drop_ratio, seed=seed)
                network = dataclasses.replace(
                    config.network, queue_bytes=depth
                )
                batch.append(
                    dataclasses.replace(
                        config, network=network, policy=policy
                    )
                )
    results = iter(run_many(batch))
    out = []
    for depth in queue_bytes:
        rows = {}
        for policy in (PolicyName.WEBRTC, PolicyName.ADAPTIVE):
            rows[policy] = _averaged_row(
                f"{depth // 1000}KB/{policy.value}",
                [next(results) for _ in seeds],
            )
        out.append(
            (
                f"{depth // 1000} KB",
                rows[PolicyName.WEBRTC],
                rows[PolicyName.ADAPTIVE],
            )
        )
    return out


def content_sensitivity(
    drop_ratio: float = 0.2,
    seeds: tuple[int, ...] = (1, 2, 3),
) -> list[tuple[str, AblationRow, AblationRow]]:
    """Ablation D2: the adaptive win across content classes."""
    from ..traces.content import ContentClass

    batch: list[SessionConfig] = []
    for content in ContentClass:
        for policy in (PolicyName.WEBRTC, PolicyName.ADAPTIVE):
            for seed in seeds:
                config = scenarios.step_drop_config(
                    drop_ratio, seed=seed, content=content
                )
                batch.append(
                    dataclasses.replace(config, policy=policy)
                )
    results = iter(run_many(batch))
    out = []
    for content in ContentClass:
        rows = {}
        for policy in (PolicyName.WEBRTC, PolicyName.ADAPTIVE):
            rows[policy] = _averaged_row(
                f"{content.value}/{policy.value}",
                [next(results) for _ in seeds],
            )
        out.append(
            (
                content.value,
                rows[PolicyName.WEBRTC],
                rows[PolicyName.ADAPTIVE],
            )
        )
    return out


def format_paired_rows(
    pairs: list[tuple[str, AblationRow, AblationRow]], title: str
) -> str:
    """Aligned table for (label, baseline, adaptive) triples."""
    header = (
        f"{'point':<15} {'base lat':>10} {'adpt lat':>10} "
        f"{'reduction':>10} {'base SSIM':>10} {'adpt SSIM':>10}"
    )
    lines = [title, header, "-" * len(header)]
    for label, base, adap in pairs:
        if base.failed is not None or adap.failed is not None:
            marker = base.failed or adap.failed
            lines.append(f"{label:<15} {marker}")
            continue
        reduction = (1 - adap.mean_latency / base.mean_latency) * 100
        lines.append(
            f"{label:<15} "
            f"{base.mean_latency * 1e3:>8.1f}ms "
            f"{adap.mean_latency * 1e3:>8.1f}ms "
            f"{reduction:>9.1f}% "
            f"{base.mean_ssim:>10.4f} "
            f"{adap.mean_ssim:>10.4f}"
        )
    return "\n".join(lines)


def format_rows(rows: list[AblationRow], title: str) -> str:
    """Aligned text table for ablation output."""
    header = (
        f"{'variant':<20} {'mean lat':>10} {'p95 lat':>10} {'SSIM':>8}"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        if row.failed is not None:
            lines.append(f"{row.variant:<20} {row.failed}")
            continue
        lines.append(
            f"{row.variant:<20} "
            f"{row.mean_latency * 1e3:>8.1f}ms "
            f"{row.p95_latency * 1e3:>8.1f}ms "
            f"{row.mean_ssim:>8.4f}"
        )
    return "\n".join(lines)
