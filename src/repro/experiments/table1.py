"""Table 1 — the poster's headline result.

"Preliminary tests with the x264 codec show these strategies can reduce
latency by 28.66% to 78.87% while slightly improving video quality by
0.8% to 3%."

One row per drop severity: mean frame latency over the drop window for
the baseline (libwebrtc-like GCC → x264 coupling) and the adaptive
controller, the resulting reduction, and the session-wide displayed-SSIM
change. Rows are averaged over :data:`~repro.experiments.scenarios.TABLE1_SEEDS`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

import numpy as np

from ..pipeline.config import PolicyName, SessionConfig
from ..pipeline.parallel import run_many
from ..pipeline.results import SessionResult
from ..pipeline.supervisor import failure_label, split_failures
from . import scenarios


@dataclass(frozen=True)
class Table1Row:
    """One severity point of the headline table (seed-averaged).

    ``failed`` is ``None`` on the normal path. Under supervised
    execution a quarantined session marks its whole severity point:
    metrics become NaN and ``failed`` carries the ``FAILED(<reason>)``
    marker rendered by every output format.
    """

    drop_ratio: float
    label: str
    baseline_latency: float
    adaptive_latency: float
    latency_reduction_pct: float
    baseline_ssim: float
    adaptive_ssim: float
    ssim_change_pct: float
    baseline_pli: float
    adaptive_pli: float
    failed: str | None = None


def _row_configs(
    drop_ratio: float,
    seeds: tuple[int, ...],
    baseline: PolicyName,
) -> list[SessionConfig]:
    """The (baseline, adaptive) config pairs for one severity point."""
    configs = []
    for seed in seeds:
        config = scenarios.step_drop_config(drop_ratio, seed=seed)
        configs.append(dataclasses.replace(config, policy=baseline))
        configs.append(
            dataclasses.replace(config, policy=PolicyName.ADAPTIVE)
        )
    return configs


def _failed_row(drop_ratio: float, marker: str) -> Table1Row:
    nan = float("nan")
    return Table1Row(
        drop_ratio=drop_ratio,
        label=scenarios.ratio_label(drop_ratio),
        baseline_latency=nan,
        adaptive_latency=nan,
        latency_reduction_pct=nan,
        baseline_ssim=nan,
        adaptive_ssim=nan,
        ssim_change_pct=nan,
        baseline_pli=nan,
        adaptive_pli=nan,
        failed=marker,
    )


def _row_from_results(
    drop_ratio: float, results: list[SessionResult]
) -> Table1Row:
    """Average one severity point's (baseline, adaptive) result pairs."""
    _ok, failures = split_failures(results)
    if failures:
        return _failed_row(drop_ratio, failure_label(failures))
    start, end = scenarios.DROP_WINDOW
    base_lat, adap_lat, base_ssim, adap_ssim = [], [], [], []
    base_pli, adap_pli = [], []
    for i in range(0, len(results), 2):
        base, adap = results[i], results[i + 1]
        base_lat.append(base.mean_latency(start, end))
        adap_lat.append(adap.mean_latency(start, end))
        base_ssim.append(base.mean_displayed_ssim())
        adap_ssim.append(adap.mean_displayed_ssim())
        base_pli.append(base.pli_count)
        adap_pli.append(adap.pli_count)
    b_lat = float(np.mean(base_lat))
    a_lat = float(np.mean(adap_lat))
    b_ssim = float(np.mean(base_ssim))
    a_ssim = float(np.mean(adap_ssim))
    return Table1Row(
        drop_ratio=drop_ratio,
        label=scenarios.ratio_label(drop_ratio),
        baseline_latency=b_lat,
        adaptive_latency=a_lat,
        latency_reduction_pct=(1.0 - a_lat / b_lat) * 100.0,
        baseline_ssim=b_ssim,
        adaptive_ssim=a_ssim,
        ssim_change_pct=(a_ssim / b_ssim - 1.0) * 100.0,
        baseline_pli=float(np.mean(base_pli)),
        adaptive_pli=float(np.mean(adap_pli)),
    )


def run_row(
    drop_ratio: float,
    seeds: tuple[int, ...] = scenarios.TABLE1_SEEDS,
    baseline: PolicyName = PolicyName.WEBRTC,
) -> Table1Row:
    """Compute one table row, averaging the given seeds."""
    results = run_many(_row_configs(drop_ratio, seeds, baseline))
    return _row_from_results(drop_ratio, results)


def plan_batch(
    ratios: tuple[float, ...] = scenarios.TABLE1_DROP_RATIOS,
    seeds: tuple[int, ...] = scenarios.TABLE1_SEEDS,
    baseline: PolicyName = PolicyName.WEBRTC,
) -> tuple[list[SessionConfig], list[tuple[float, int, int]]]:
    """The table's session batch plus its ``(ratio, lo, hi)`` row spans.

    Deterministic enumeration: the same arguments always produce the
    same configs in the same order. The shard fabric
    (:mod:`repro.pipeline.shards`) partitions exactly this batch, and
    :func:`rows_from_results` folds results — wherever they were
    executed — back into rows.
    """
    batch: list[SessionConfig] = []
    spans: list[tuple[float, int, int]] = []
    for ratio in ratios:
        configs = _row_configs(ratio, seeds, baseline)
        spans.append((ratio, len(batch), len(batch) + len(configs)))
        batch.extend(configs)
    return batch, spans


def rows_from_results(
    results: list[SessionResult],
    spans: list[tuple[float, int, int]],
) -> list[Table1Row]:
    """Fold a batch's results (in :func:`plan_batch` order) into rows."""
    return [
        _row_from_results(ratio, results[lo:hi])
        for ratio, lo, hi in spans
    ]


def run_table(
    ratios: tuple[float, ...] = scenarios.TABLE1_DROP_RATIOS,
    seeds: tuple[int, ...] = scenarios.TABLE1_SEEDS,
    baseline: PolicyName = PolicyName.WEBRTC,
) -> list[Table1Row]:
    """Compute the full headline table.

    All ``len(ratios) × len(seeds) × 2`` sessions go through one
    :func:`run_many` batch, so a configured worker pool parallelizes
    the entire table regeneration.
    """
    batch, spans = plan_batch(ratios, seeds, baseline)
    return rows_from_results(run_many(batch), spans)


def format_table(rows: list[Table1Row]) -> str:
    """Render the table the way the poster reports it."""
    header = (
        f"{'scenario':<14} {'base lat':>9} {'adpt lat':>9} "
        f"{'reduction':>10} {'base SSIM':>10} {'adpt SSIM':>10} "
        f"{'SSIM chg':>9} {'PLI b/a':>8}"
    )
    lines = [
        "Table 1 — latency reduction and quality change "
        "(adaptive vs baseline)",
        header,
        "-" * len(header),
    ]
    for row in rows:
        if row.failed is not None:
            lines.append(f"{row.label:<14} {row.failed}")
            continue
        lines.append(
            f"{row.label:<14} "
            f"{row.baseline_latency * 1e3:>7.1f}ms "
            f"{row.adaptive_latency * 1e3:>7.1f}ms "
            f"{row.latency_reduction_pct:>9.2f}% "
            f"{row.baseline_ssim:>10.4f} "
            f"{row.adaptive_ssim:>10.4f} "
            f"{row.ssim_change_pct:>+8.2f}% "
            f"{row.baseline_pli:>4.1f}/{row.adaptive_pli:<3.1f}"
        )
    return "\n".join(lines)


#: Metric columns (everything except identity/failure fields).
_METRIC_FIELDS = tuple(
    f.name
    for f in dataclasses.fields(Table1Row)
    if f.name not in ("drop_ratio", "label", "failed")
)


def rows_to_dicts(rows: list[Table1Row]) -> list[dict]:
    """JSON-ready rows; failed rows carry ``null`` metrics + a marker."""
    out = []
    for row in rows:
        payload: dict = {
            "drop_ratio": row.drop_ratio,
            "label": row.label,
            "failed": row.failed,
        }
        for name in _METRIC_FIELDS:
            value = getattr(row, name)
            payload[name] = None if row.failed is not None else float(value)
        out.append(payload)
    return out


def to_json(rows: list[Table1Row]) -> str:
    """Deterministic JSON encoding of the table (stable key order)."""
    return json.dumps(
        {"table1": rows_to_dicts(rows)}, indent=2, sort_keys=True
    )


def render(rows: list[Table1Row], fmt: str) -> str:
    """One format dispatch for the CLI *and* the shard-merge path.

    Both must write byte-identical reports for the same rows, so the
    trailing-newline conventions live here and nowhere else.
    """
    if fmt == "json":
        return to_json(rows) + "\n"
    if fmt == "csv":
        return to_csv(rows)
    return format_table(rows) + "\n"


def to_csv(rows: list[Table1Row]) -> str:
    """Deterministic CSV, one row per severity point."""
    columns = ["drop_ratio", "label", *_METRIC_FIELDS, "failed"]
    lines = [",".join(columns)]
    for payload in rows_to_dicts(rows):
        cells = []
        for name in columns:
            value = payload[name]
            if value is None:
                cells.append("")
            elif isinstance(value, float):
                cells.append(repr(value))
            else:
                cells.append(str(value))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"
