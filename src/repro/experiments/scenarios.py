"""Canonical evaluation scenarios.

These freeze the operating points used by every table/figure so that
benchmarks, tests, and examples agree. The headline configuration
follows the poster's setup as far as it is stated (x264, sudden
bandwidth drops) with the remaining parameters chosen to be typical of
RTC deployments:

* base capacity 2.5 Mbps (comfortable 720p30), one-way propagation
  20 ms (RTT 40 ms);
* bottleneck queue 140 KB ≈ 0.45 s at the base rate;
* a 10 s capacity drop at t = 10 s, surviving fraction swept over
  {0.60, 0.45, 0.30, 0.20, 0.12};
* talking-head content, 30 fps, 25 s sessions, 5 seeds per point.
"""

from __future__ import annotations

import dataclasses

from ..core.config import AdaptiveConfig
from ..pipeline.config import NetworkConfig, SessionConfig, VideoConfig
from ..traces.content import ContentClass
from ..traces.generators import drop_ratio_scenario, multi_drop
from ..units import mbps, ms

#: Base capacity before/after drops.
BASE_RATE_BPS = mbps(2.5)

#: Bottleneck queue (~0.45 s at the base rate).
QUEUE_BYTES = 140_000

#: Drop timing shared by the step scenarios.
DROP_AT = 10.0
DROP_DURATION = 10.0

#: Surviving-capacity fractions swept by Table 1 / Figure 4.
TABLE1_DROP_RATIOS = (0.60, 0.45, 0.30, 0.20, 0.12)

#: Seeds averaged per scenario point.
TABLE1_SEEDS = (1, 2, 3, 4, 5)

#: Session length (capture time).
DURATION = 25.0

#: Measurement window for latency: the drop plus its aftermath.
DROP_WINDOW = (DROP_AT, DROP_AT + DROP_DURATION)

#: Adaptive-controller settings used across the evaluation.
ADAPTIVE_TUNING = AdaptiveConfig(drain_share=0.2, skip_queue_delay=0.45)


def step_drop_config(
    drop_ratio: float,
    seed: int = 1,
    content: ContentClass = ContentClass.TALKING_HEAD,
    propagation_delay: float = ms(20),
) -> SessionConfig:
    """The canonical single-drop scenario at one severity."""
    capacity = drop_ratio_scenario(
        BASE_RATE_BPS, drop_ratio, DROP_AT, DROP_DURATION
    )
    return SessionConfig(
        network=NetworkConfig(
            capacity=capacity,
            propagation_delay=propagation_delay,
            queue_bytes=QUEUE_BYTES,
        ),
        video=VideoConfig(content_class=content),
        duration=DURATION,
        seed=seed,
        adaptive=ADAPTIVE_TUNING,
    )


def multi_drop_config(seed: int = 1) -> SessionConfig:
    """Figure 3's workload: five drops of mixed severity over 120 s."""
    capacity = multi_drop(
        BASE_RATE_BPS,
        [
            (15.0, BASE_RATE_BPS * 0.45, 8.0),
            (35.0, BASE_RATE_BPS * 0.20, 10.0),
            (55.0, BASE_RATE_BPS * 0.60, 6.0),
            (75.0, BASE_RATE_BPS * 0.12, 8.0),
            (95.0, BASE_RATE_BPS * 0.30, 10.0),
        ],
    )
    return SessionConfig(
        network=NetworkConfig(capacity=capacity, queue_bytes=QUEUE_BYTES),
        video=VideoConfig(content_class=ContentClass.TALKING_HEAD),
        duration=120.0,
        seed=seed,
        adaptive=ADAPTIVE_TUNING,
    )


def with_rtt(config: SessionConfig, rtt: float) -> SessionConfig:
    """A copy of ``config`` with the given round-trip propagation."""
    network = dataclasses.replace(
        config.network, propagation_delay=rtt / 2
    )
    return dataclasses.replace(config, network=network)


def ratio_label(drop_ratio: float) -> str:
    """Human label for a severity point, e.g. ``drop to 30%``."""
    return f"drop to {int(round(drop_ratio * 100))}%"
