"""Extended comparison: all policies on the canonical scenarios.

Beyond the paper's baseline-vs-adaptive headline, this pits the adaptive
controller against the slow app-timer baseline, the Salsify-like
per-frame scheme, and the capacity oracle — bounding where the
contribution sits in the design space.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..pipeline.config import PolicyName, SessionConfig
from ..pipeline.parallel import run_many
from ..pipeline.results import SessionResult
from ..pipeline.supervisor import failure_label, split_failures
from . import scenarios

ALL_POLICIES = (
    PolicyName.DEFAULT_ABR,
    PolicyName.WEBRTC,
    PolicyName.SALSIFY,
    PolicyName.ADAPTIVE,
    PolicyName.ORACLE,
)


@dataclass(frozen=True)
class PolicyRow:
    """Seed-averaged metrics for one policy on one scenario.

    ``failed`` is ``None`` on the normal path; under supervised
    execution a quarantined session yields NaN metrics plus the
    ``FAILED(<reason>)`` marker.
    """

    policy: str
    mean_latency: float
    p95_latency: float
    peak_latency: float
    mean_ssim: float
    freeze_fraction: float
    pli_count: float
    failed: str | None = None


def plan_batch(
    drop_ratio: float = 0.2,
    seeds: tuple[int, ...] = (1, 2, 3),
    policies: tuple[PolicyName, ...] = ALL_POLICIES,
) -> list[SessionConfig]:
    """The comparison's session batch (policy-major, seed-minor order).

    Deterministic enumeration shared with the shard fabric
    (:mod:`repro.pipeline.shards`); :func:`rows_from_results` folds the
    results back into rows.
    """
    return [
        dataclasses.replace(
            scenarios.step_drop_config(drop_ratio, seed=seed),
            policy=policy,
        )
        for policy in policies
        for seed in seeds
    ]


def rows_from_results(
    batch_results: list[SessionResult],
    seeds: tuple[int, ...],
    policies: tuple[PolicyName, ...] = ALL_POLICIES,
) -> list[PolicyRow]:
    """Fold batch results (in :func:`plan_batch` order) into rows."""
    start, end = scenarios.DROP_WINDOW
    results = iter(batch_results)
    rows = []
    for policy in policies:
        per_policy = [next(results) for _ in seeds]
        _ok, failures = split_failures(per_policy)
        if failures:
            nan = float("nan")
            rows.append(
                PolicyRow(
                    policy=policy.value,
                    mean_latency=nan,
                    p95_latency=nan,
                    peak_latency=nan,
                    mean_ssim=nan,
                    freeze_fraction=nan,
                    pli_count=nan,
                    failed=failure_label(failures),
                )
            )
            continue
        lat, p95, peak, ssim, freeze, pli = [], [], [], [], [], []
        for result in per_policy:
            lat.append(result.mean_latency(start, end))
            p95.append(result.percentile_latency(95, start, end))
            peak.append(result.peak_latency(start, end))
            ssim.append(result.mean_displayed_ssim())
            freeze.append(result.freeze_fraction())
            pli.append(result.pli_count)
        rows.append(
            PolicyRow(
                policy=policy.value,
                mean_latency=float(np.mean(lat)),
                p95_latency=float(np.mean(p95)),
                peak_latency=float(np.mean(peak)),
                mean_ssim=float(np.mean(ssim)),
                freeze_fraction=float(np.mean(freeze)),
                pli_count=float(np.mean(pli)),
            )
        )
    return rows


def run_comparison(
    drop_ratio: float = 0.2,
    seeds: tuple[int, ...] = (1, 2, 3),
    policies: tuple[PolicyName, ...] = ALL_POLICIES,
) -> list[PolicyRow]:
    """Run every policy on the same scenario points."""
    batch = plan_batch(drop_ratio, seeds, policies)
    return rows_from_results(run_many(batch), seeds, policies)


def comparison_title(drop_ratio: float) -> str:
    """The canonical report title (shared by CLI and shard merge)."""
    return f"All policies, drop to {drop_ratio:.0%}"


def format_comparison(rows: list[PolicyRow], title: str) -> str:
    """Aligned text table for the policy comparison."""
    header = (
        f"{'policy':<13} {'mean lat':>10} {'p95 lat':>10} "
        f"{'peak lat':>10} {'SSIM':>8} {'freeze':>7} {'PLI':>5}"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        if row.failed is not None:
            lines.append(f"{row.policy:<13} {row.failed}")
            continue
        lines.append(
            f"{row.policy:<13} "
            f"{row.mean_latency * 1e3:>8.1f}ms "
            f"{row.p95_latency * 1e3:>8.1f}ms "
            f"{row.peak_latency * 1e3:>8.1f}ms "
            f"{row.mean_ssim:>8.4f} "
            f"{row.freeze_fraction:>7.3f} "
            f"{row.pli_count:>5.1f}"
        )
    return "\n".join(lines)
