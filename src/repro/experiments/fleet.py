"""Population scenarios over the SFU fleet: churn, flash crowds, faults.

Each scenario builds one :class:`~repro.fleet.FleetConfig` per seed —
a two-region fleet with a deliberately tight shared downlink — and the
whole grid goes through one :func:`~repro.pipeline.parallel.run_many`
call, so fleet cells cache, parallelize, supervise, and shard exactly
like single-session cells. The report carries population-level QoE
(p50/p95/p99 latency, freeze ratio, SSIM) plus the per-region split
that makes a regional fault's blast radius visible.

Determinism contract: same (scenario, seed, subscribers, duration) ⇒
byte-identical JSON/CSV report on any backend (enforced by the
``fleet-smoke`` CI job, serial vs ``--workers 2``).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from ..errors import ConfigError
from ..faults.spec import FaultKind, FaultSchedule, FaultSpec
from ..fleet import FleetConfig, FleetResult, two_region_fleet
from ..pipeline.parallel import run_many
from ..pipeline.supervisor import FailedSession, failure_label

#: Default capture duration for fleet cells (population dynamics —
#: initial contention, downgrades, probe recovery — play out within a
#: few seconds at fleet scale; long tails just repeat the equilibrium).
DURATION = 12.0

#: Default total subscriber population (split over the two regions).
SUBSCRIBERS = 40

#: Regional-degradation timing, as fractions of the duration.
DEGRADE_START_FRAC = 0.4
DEGRADE_LEN_FRAC = 0.3

#: The degraded region's downlink is clamped to this fraction of its
#: *all-low-layer* aggregate — below what the settled population needs,
#: so the fault bites even after everyone has downshifted.
DEGRADE_FLOOR_OF_LOW_AGGREGATE = 0.5


def _per_region(subscribers: int) -> int:
    return max(1, subscribers // 2)


def _steady(seed: int, subscribers: int, duration: float) -> FleetConfig:
    """Full-session membership, tight shared downlinks, no faults."""
    return two_region_fleet(
        _per_region(subscribers), duration=duration, seed=seed
    )


def _churn(seed: int, subscribers: int, duration: float) -> FleetConfig:
    """Deterministic join/leave churn across the population."""
    return two_region_fleet(
        _per_region(subscribers), duration=duration, seed=seed, churn=True
    )


def _flash_crowd(
    seed: int, subscribers: int, duration: float
) -> FleetConfig:
    """Half the population joins at once, 40% into the session."""
    return two_region_fleet(
        _per_region(subscribers),
        duration=duration,
        seed=seed,
        flash_crowd_at=duration * 0.4,
        flash_crowd_fraction=0.5,
    )


def _regional_degradation(
    seed: int, subscribers: int, duration: float
) -> FleetConfig:
    """Region ``b``'s shared downlink collapses mid-session.

    The clamp floor sits below the region's all-low-layer aggregate, so
    even a fully downshifted population overruns the faulted link —
    region ``b``'s tail latency and freezes move, region ``a``'s do
    not.
    """
    per_region = _per_region(subscribers)
    base = two_region_fleet(per_region, duration=duration, seed=seed)
    low_rate = min(layer.target_bps for layer in base.layers)
    floor = per_region * low_rate * DEGRADE_FLOOR_OF_LOW_AGGREGATE
    schedule = FaultSchedule.of(
        FaultSpec(
            kind=FaultKind.CAPACITY_OUTAGE,
            start=duration * DEGRADE_START_FRAC,
            duration=duration * DEGRADE_LEN_FRAC,
            rate_bps=floor,
        )
    )
    return dataclasses.replace(
        base, faults=schedule, faulted_region="b"
    )


#: Named scenario builders:
#: ``name -> f(seed, subscribers, duration) -> FleetConfig``.
SCENARIOS = {
    "steady": _steady,
    "churn": _churn,
    "flash_crowd": _flash_crowd,
    "regional_degradation": _regional_degradation,
}

#: Scenarios exercised when the caller does not pick.
DEFAULT_SCENARIOS = ("steady", "churn", "regional_degradation")


# ----------------------------------------------------------------------
# Cells and report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetCell:
    """Population QoE of one (scenario, seed) fleet run.

    ``region_a_*``/``region_b_*`` carry the per-region p95 split (the
    canonical scenarios are all two-region fleets); ``failed`` marks a
    quarantined cell, whose metrics are NaN.
    """

    scenario: str
    seed: int
    sessions: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    freeze_ratio: float
    mean_ssim: float
    layer_switches: int
    plis: int
    region_a_p95_ms: float
    region_b_p95_ms: float
    failed: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready payload."""
        return dataclasses.asdict(self)


@dataclass
class FleetReport:
    """The scenario × seed grid plus the parameters that produced it."""

    scenarios: tuple[str, ...]
    seeds: tuple[int, ...]
    subscribers: int
    duration: float
    cells: list[FleetCell]

    def to_dict(self) -> dict:
        """JSON-ready payload."""
        return {
            "scenarios": list(self.scenarios),
            "seeds": [int(s) for s in self.seeds],
            "subscribers": int(self.subscribers),
            "duration": float(self.duration),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, fixed cell order)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """Deterministic CSV, one row per cell."""
        columns = [f.name for f in dataclasses.fields(FleetCell)]
        lines = [",".join(columns)]
        for cell in self.cells:
            row = []
            for name in columns:
                value = getattr(cell, name)
                if value is None:
                    row.append("")
                elif isinstance(value, float):
                    row.append(repr(value))
                else:
                    row.append(str(value))
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def format_table(self) -> str:
        """Aligned text table, one row per cell."""
        header = (
            f"{'scenario':<22} {'seed':>4} {'p50':>8} {'p95':>9} "
            f"{'p99':>9} {'freeze':>7} {'ssim':>7} {'switch':>6} "
            f"{'a.p95':>9} {'b.p95':>9}"
        )
        lines = [
            f"fleet: {self.subscribers} subscribers x "
            f"{self.duration:g}s per cell",
            header,
            "-" * len(header),
        ]
        for cell in self.cells:
            if cell.failed is not None:
                lines.append(
                    f"{cell.scenario:<22} {cell.seed:>4} {cell.failed}"
                )
                continue
            lines.append(
                f"{cell.scenario:<22} {cell.seed:>4} "
                f"{cell.p50_ms:>6.1f}ms {cell.p95_ms:>7.1f}ms "
                f"{cell.p99_ms:>7.1f}ms {cell.freeze_ratio:>7.3f} "
                f"{cell.mean_ssim:>7.4f} {cell.layer_switches:>6d} "
                f"{cell.region_a_p95_ms:>7.1f}ms "
                f"{cell.region_b_p95_ms:>7.1f}ms"
            )
        return "\n".join(lines)


def render(report: FleetReport, fmt: str) -> str:
    """Render the report in one of the CLI formats."""
    if fmt == "json":
        return report.to_json() + "\n"
    if fmt == "csv":
        return report.to_csv()
    return report.format_table() + "\n"


# ----------------------------------------------------------------------
# Planning and assembly (split so the shard fabric reuses both halves)
# ----------------------------------------------------------------------
def _check_names(scenario_names: tuple[str, ...]) -> None:
    for name in scenario_names:
        if name not in SCENARIOS:
            raise ConfigError(
                f"unknown fleet scenario {name!r}; "
                f"known: {sorted(SCENARIOS)}"
            )


def plan_batch(
    scenario_names: tuple[str, ...] = DEFAULT_SCENARIOS,
    seeds: tuple[int, ...] = (1,),
    subscribers: int = SUBSCRIBERS,
    duration: float = DURATION,
) -> list[FleetConfig]:
    """The grid's deterministic config batch, scenario-major."""
    _check_names(scenario_names)
    if not seeds:
        raise ConfigError("need at least one seed")
    if subscribers < 2:
        raise ConfigError("fleet grid needs at least two subscribers")
    if duration <= 0:
        raise ConfigError("duration must be positive")
    return [
        SCENARIOS[name](seed, subscribers, duration)
        for name in scenario_names
        for seed in seeds
    ]


def rows_from_results(
    results: list,
    scenario_names: tuple[str, ...],
    seeds: tuple[int, ...],
) -> list[FleetCell]:
    """Fold a result list (in :func:`plan_batch` order) into cells."""
    iterator = iter(results)
    nan = float("nan")
    cells: list[FleetCell] = []
    for name in scenario_names:
        for seed in seeds:
            result = next(iterator)
            if isinstance(result, FailedSession):
                cells.append(
                    FleetCell(
                        scenario=name,
                        seed=seed,
                        sessions=0,
                        p50_ms=nan,
                        p95_ms=nan,
                        p99_ms=nan,
                        freeze_ratio=nan,
                        mean_ssim=nan,
                        layer_switches=0,
                        plis=0,
                        region_a_p95_ms=nan,
                        region_b_p95_ms=nan,
                        failed=failure_label([result]),
                    )
                )
                continue
            assert isinstance(result, FleetResult)
            latency = result.population["latency_ms"]
            cells.append(
                FleetCell(
                    scenario=name,
                    seed=seed,
                    sessions=result.subscribers,
                    p50_ms=latency["p50"] if latency["p50"] is not None
                    else nan,
                    p95_ms=latency["p95"] if latency["p95"] is not None
                    else nan,
                    p99_ms=latency["p99"] if latency["p99"] is not None
                    else nan,
                    freeze_ratio=result.population["freeze_ratio"],
                    mean_ssim=result.population["mean_ssim"],
                    layer_switches=result.totals["layer_switches"],
                    plis=result.totals["plis"],
                    region_a_p95_ms=result.region_latency_ms("a") or nan,
                    region_b_p95_ms=result.region_latency_ms("b") or nan,
                )
            )
    return cells


def run_population(
    scenario_names: tuple[str, ...] = DEFAULT_SCENARIOS,
    seeds: tuple[int, ...] = (1,),
    subscribers: int = SUBSCRIBERS,
    duration: float = DURATION,
) -> FleetReport:
    """Run the scenario × seed fleet grid and assemble the report."""
    batch = plan_batch(scenario_names, seeds, subscribers, duration)
    results = run_many(batch)
    return FleetReport(
        scenarios=tuple(scenario_names),
        seeds=tuple(seeds),
        subscribers=subscribers,
        duration=duration,
        cells=rows_from_results(results, tuple(scenario_names), tuple(seeds)),
    )
