"""Robustness matrix: scenario × fault grid with a degradation report.

Every cell runs the same (scenario, policy, seed) session twice — once
clean, once with a canonical :class:`~repro.faults.FaultSchedule` — and
reports how much the fault degraded the call:

* **Δp95 latency** and **ΔSSIM** over the post-warm-up window;
* **Δfreeze** (change in frozen-slot fraction);
* **recovery time**: how long after each fault window closed until a
  fresh frame reached the screen at near-baseline latency.

Everything goes through :func:`~repro.pipeline.parallel.run_many`, so
the grid caches, parallelizes, and stays bit-identical across workers.
The report's JSON/CSV encodings are deterministic: same seeds + same
grid = byte-identical output (enforced by the ``chaos-smoke`` CI job).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..faults.spec import FaultKind, FaultSchedule, FaultSpec
from ..pipeline.config import NetworkConfig, PolicyName, SessionConfig, VideoConfig
from ..pipeline.parallel import run_many
from ..pipeline.results import SessionResult
from ..pipeline.supervisor import failure_label, split_failures
from ..traces.bandwidth import BandwidthTrace
from ..traces.content import ContentClass
from ..units import mbps
from . import scenarios

#: When the canonical fault windows open (s into the session).
FAULT_AT = 8.0

#: Default session length for the matrix (shorter than the Table 1
#: sessions — every cell is a *pair* of runs).
DURATION = 20.0

#: Metrics window start: skip congestion-control warm-up.
MEASURE_FROM = 2.0

#: A slot counts as "recovered" once a displayed frame captured after
#: the fault window lands within ``factor × baseline`` mean latency
#: (with an absolute slack floor for very low-latency baselines).
RECOVERY_LATENCY_FACTOR = 1.2
RECOVERY_LATENCY_SLACK = 0.03


# ----------------------------------------------------------------------
# Scenario and fault grids
# ----------------------------------------------------------------------
def _steady_config(seed: int, duration: float) -> SessionConfig:
    """Constant capacity at the canonical base rate."""
    return SessionConfig(
        network=NetworkConfig(
            capacity=BandwidthTrace.constant(scenarios.BASE_RATE_BPS),
            queue_bytes=scenarios.QUEUE_BYTES,
        ),
        video=VideoConfig(content_class=ContentClass.TALKING_HEAD),
        duration=duration,
        seed=seed,
        adaptive=scenarios.ADAPTIVE_TUNING,
    )


def _drop_config(ratio: float):
    def build(seed: int, duration: float) -> SessionConfig:
        return dataclasses.replace(
            scenarios.step_drop_config(ratio, seed=seed),
            duration=duration,
        )

    return build


#: Named scenario builders: ``name -> f(seed, duration) -> SessionConfig``.
SCENARIOS = {
    "steady": _steady_config,
    "drop45": _drop_config(0.45),
    "drop20": _drop_config(0.20),
}

#: Scenarios exercised when the caller does not pick.
DEFAULT_SCENARIOS = ("steady", "drop45")


def fault_suite(at: float = FAULT_AT) -> dict[str, FaultSchedule]:
    """The canonical named schedules: one per fault kind plus a combo.

    Windows open at ``at`` seconds and close within 4 s, leaving the
    tail of a :data:`DURATION` session to observe recovery.
    """
    k = FaultKind
    return {
        "feedback_blackout": FaultSchedule.of(
            FaultSpec(k.FEEDBACK_BLACKOUT, at, 2.0)
        ),
        "rtcp_delay": FaultSchedule.of(
            FaultSpec(k.RTCP_DELAY, at, 3.0, delay=0.25)
        ),
        "encoder_stall": FaultSchedule.of(
            FaultSpec(k.ENCODER_STALL, at, 1.0)
        ),
        "keyframe_storm": FaultSchedule.of(
            FaultSpec(k.KEYFRAME_STORM, at, 2.0, interval=0.2)
        ),
        "capacity_outage": FaultSchedule.of(
            FaultSpec(k.CAPACITY_OUTAGE, at, 1.5, rate_bps=0.0)
        ),
        "link_flap": FaultSchedule.of(
            FaultSpec(k.LINK_FLAP, at, 3.0, up_time=0.7, down_time=0.3)
        ),
        "loss_storm": FaultSchedule.of(
            FaultSpec(
                k.LOSS_STORM,
                at,
                3.0,
                probability=1.0,
                burst_packets=8.0,
                gap_packets=32.0,
            )
        ),
        "cross_traffic_surge": FaultSchedule.of(
            FaultSpec(k.CROSS_TRAFFIC_SURGE, at, 4.0, rate_bps=mbps(1.5))
        ),
        "blackout_plus_outage": FaultSchedule.of(
            FaultSpec(k.FEEDBACK_BLACKOUT, at, 2.0),
            FaultSpec(k.CAPACITY_OUTAGE, at + 0.5, 1.5, rate_bps=0.0),
        ),
    }


#: Canonical fault names (stable order; used by the CLI's choices).
FAULT_NAMES = tuple(fault_suite())

#: Faults exercised when the caller does not pick.
DEFAULT_FAULTS = FAULT_NAMES

#: Policies exercised when the caller does not pick.
DEFAULT_POLICIES = (PolicyName.ADAPTIVE, PolicyName.WEBRTC)


# ----------------------------------------------------------------------
# Degradation metrics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RobustnessCell:
    """Seed-averaged degradation of one (scenario, fault, policy) cell.

    Attributes:
        baseline_* / faulted_*: window metrics of the clean and faulted
            runs; ``delta_* = faulted - baseline``.
        recovery_s: mean time from fault-window close to the first
            near-baseline displayed frame, over the (seed, fault-spec)
            pairs that recovered; ``None`` when none did.
        unrecovered: how many (seed, fault-spec) pairs never recovered
            before the session ended.
        failed: ``None`` on the normal path; under supervised execution
            a quarantined session (clean or faulted) marks the cell —
            metrics become NaN and ``failed`` carries the
            ``FAILED(<reason>)`` marker in every output format.
    """

    scenario: str
    fault: str
    policy: str
    baseline_p95_ms: float
    faulted_p95_ms: float
    delta_p95_ms: float
    baseline_ssim: float
    faulted_ssim: float
    delta_ssim: float
    delta_freeze: float
    recovery_s: float | None
    unrecovered: int
    failed: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready payload."""
        return dataclasses.asdict(self)


def recovery_time(
    result: SessionResult, fault_end: float, baseline_mean_latency: float
) -> float | None:
    """Seconds from ``fault_end`` until the call is back to normal.

    "Back to normal" is the first displayed frame captured at or after
    ``fault_end`` whose capture→display latency is within
    :data:`RECOVERY_LATENCY_FACTOR` of the clean run's mean (plus an
    absolute slack floor). ``None`` when no such frame exists.
    """
    threshold = max(
        RECOVERY_LATENCY_FACTOR * baseline_mean_latency,
        baseline_mean_latency + RECOVERY_LATENCY_SLACK,
    )
    for outcome in result.frames:
        if outcome.capture_time < fault_end:
            continue
        latency = outcome.latency()
        if latency is not None and latency <= threshold:
            return outcome.capture_time - fault_end
    return None


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
@dataclass
class RobustnessReport:
    """The full grid plus the parameters that produced it."""

    scenarios: tuple[str, ...]
    faults: tuple[str, ...]
    policies: tuple[str, ...]
    seeds: tuple[int, ...]
    duration: float
    fault_at: float
    measure_from: float
    cells: list[RobustnessCell]

    def to_dict(self) -> dict:
        """JSON-ready payload."""
        return {
            "scenarios": list(self.scenarios),
            "faults": list(self.faults),
            "policies": list(self.policies),
            "seeds": [int(s) for s in self.seeds],
            "duration": float(self.duration),
            "fault_at": float(self.fault_at),
            "measure_from": float(self.measure_from),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, fixed cell order)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """Deterministic CSV, one row per cell."""
        columns = [f.name for f in dataclasses.fields(RobustnessCell)]
        lines = [",".join(columns)]
        for cell in self.cells:
            row = []
            for name in columns:
                value = getattr(cell, name)
                if value is None:
                    row.append("")
                elif isinstance(value, float):
                    row.append(repr(value))
                else:
                    row.append(str(value))
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def format_table(self) -> str:
        """Aligned text table, grouped by scenario."""
        header = (
            f"{'fault':<22} {'policy':<10} {'Δp95':>9} {'ΔSSIM':>8} "
            f"{'Δfreeze':>8} {'recovery':>9} {'unrec':>6}"
        )
        lines = []
        for scenario in self.scenarios:
            lines.append(f"scenario: {scenario}")
            lines.append(header)
            lines.append("-" * len(header))
            for cell in self.cells:
                if cell.scenario != scenario:
                    continue
                if cell.failed is not None:
                    lines.append(
                        f"{cell.fault:<22} {cell.policy:<10} "
                        f"{cell.failed}"
                    )
                    continue
                recovery = (
                    "never" if cell.recovery_s is None
                    else f"{cell.recovery_s:.2f}s"
                )
                lines.append(
                    f"{cell.fault:<22} {cell.policy:<10} "
                    f"{cell.delta_p95_ms:>+7.1f}ms "
                    f"{cell.delta_ssim:>+8.4f} "
                    f"{cell.delta_freeze:>+8.3f} "
                    f"{recovery:>9} "
                    f"{cell.unrecovered:>6d}"
                )
            lines.append("")
        return "\n".join(lines).rstrip("\n")


def validate_grid(
    scenario_names: tuple[str, ...],
    fault_names: tuple[str, ...],
    seeds: tuple[int, ...],
    duration: float,
    fault_at: float,
) -> dict[str, FaultSchedule]:
    """Validate matrix parameters; returns the fault suite.

    Raises:
        ConfigError: unknown scenario/fault, empty seeds, or a session
            too short to contain the fault windows.
    """
    suite = fault_suite(fault_at)
    for name in scenario_names:
        if name not in SCENARIOS:
            raise ConfigError(
                f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
            )
    for name in fault_names:
        if name not in suite:
            raise ConfigError(
                f"unknown fault {name!r}; known: {sorted(suite)}"
            )
    if not seeds:
        raise ConfigError("need at least one seed")
    if duration <= fault_at:
        raise ConfigError(
            f"duration {duration!r} must exceed fault_at {fault_at!r}"
        )
    return suite


def plan_batch(
    scenario_names: tuple[str, ...],
    fault_names: tuple[str, ...],
    policies: tuple[PolicyName, ...],
    seeds: tuple[int, ...],
    duration: float = DURATION,
    fault_at: float = FAULT_AT,
) -> list[SessionConfig]:
    """Deterministically enumerate the matrix's session batch.

    One flat batch in a fixed order — baseline then each fault, per
    (scenario, policy, seed) — so results can be folded back without
    any side channel. :func:`report_from_results` consumes exactly this
    order; the shard fabric plans, caches, and merges over it.
    """
    suite = validate_grid(
        scenario_names, fault_names, seeds, duration, fault_at
    )
    batch: list[SessionConfig] = []
    for scenario in scenario_names:
        build = SCENARIOS[scenario]
        for policy in policies:
            for seed in seeds:
                base = dataclasses.replace(
                    build(seed, duration), policy=policy
                )
                batch.append(base)
                for fault in fault_names:
                    batch.append(
                        dataclasses.replace(base, faults=suite[fault])
                    )
    return batch


def render(report: RobustnessReport, fmt: str) -> str:
    """One format dispatch for the CLI *and* the shard-merge path.

    The trailing-newline conventions live here so a merged shard
    report and ``repro-rtc chaos`` output are the same bytes.

    Raises:
        ConfigError: on an unknown format.
    """
    if fmt == "json":
        return report.to_json() + "\n"
    if fmt == "csv":
        return report.to_csv()
    if fmt == "table":
        return report.format_table() + "\n"
    raise ConfigError(f"unknown chaos format {fmt!r}")


def report_from_results(
    results_list,
    scenario_names: tuple[str, ...],
    fault_names: tuple[str, ...],
    policies: tuple[PolicyName, ...],
    seeds: tuple[int, ...],
    duration: float = DURATION,
    fault_at: float = FAULT_AT,
) -> RobustnessReport:
    """Fold a result list (in :func:`plan_batch` order) into the report.

    Quarantined sessions (as
    :class:`~repro.pipeline.supervisor.FailedSession`) poison only
    their own cell, which renders a ``FAILED(...)`` marker.
    """
    suite = validate_grid(
        scenario_names, fault_names, seeds, duration, fault_at
    )
    results = iter(results_list)

    window = (MEASURE_FROM, duration)
    cells: list[RobustnessCell] = []
    for scenario in scenario_names:
        for policy in policies:
            per_fault: dict[str, dict[str, list[float]]] = {
                fault: {
                    "p95": [], "ssim": [], "freeze": [], "recovery": []
                }
                for fault in fault_names
            }
            unrecovered = {fault: 0 for fault in fault_names}
            base_failures: list = []
            fault_failures: dict[str, list] = {
                fault: [] for fault in fault_names
            }
            base_p95, base_ssim, base_freeze = [], [], []
            for _seed in seeds:
                baseline = next(results)
                _ok, broken = split_failures([baseline])
                if broken:
                    base_failures.extend(broken)
                    base_mean = None
                else:
                    base_mean = baseline.mean_latency(*window)
                    base_p95.append(
                        baseline.percentile_latency(95, *window)
                    )
                    base_ssim.append(
                        baseline.mean_displayed_ssim(*window)
                    )
                    base_freeze.append(baseline.freeze_fraction(*window))
                for fault in fault_names:
                    faulted = next(results)
                    _ok, broken = split_failures([faulted])
                    if broken:
                        fault_failures[fault].extend(broken)
                        continue
                    bucket = per_fault[fault]
                    bucket["p95"].append(
                        faulted.percentile_latency(95, *window)
                    )
                    bucket["ssim"].append(
                        faulted.mean_displayed_ssim(*window)
                    )
                    bucket["freeze"].append(
                        faulted.freeze_fraction(*window)
                    )
                    if base_mean is None:
                        # Recovery is measured against the same-seed
                        # clean run; without it the notion is undefined.
                        continue
                    for spec in suite[fault]:
                        fault_end = min(spec.end, duration)
                        rec = recovery_time(faulted, fault_end, base_mean)
                        if rec is None:
                            unrecovered[fault] += 1
                        else:
                            bucket["recovery"].append(rec)
            nan = float("nan")
            if base_failures:
                mean_base_p95 = mean_base_ssim = mean_base_freeze = nan
            else:
                mean_base_p95 = float(np.mean(base_p95))
                mean_base_ssim = float(np.mean(base_ssim))
                mean_base_freeze = float(np.mean(base_freeze))
            for fault in fault_names:
                broken = base_failures + fault_failures[fault]
                if broken:
                    cells.append(
                        RobustnessCell(
                            scenario=scenario,
                            fault=fault,
                            policy=policy.value,
                            baseline_p95_ms=nan,
                            faulted_p95_ms=nan,
                            delta_p95_ms=nan,
                            baseline_ssim=nan,
                            faulted_ssim=nan,
                            delta_ssim=nan,
                            delta_freeze=nan,
                            recovery_s=None,
                            unrecovered=unrecovered[fault],
                            failed=failure_label(broken),
                        )
                    )
                    continue
                bucket = per_fault[fault]
                p95 = float(np.mean(bucket["p95"]))
                ssim = float(np.mean(bucket["ssim"]))
                freeze = float(np.mean(bucket["freeze"]))
                cells.append(
                    RobustnessCell(
                        scenario=scenario,
                        fault=fault,
                        policy=policy.value,
                        baseline_p95_ms=mean_base_p95 * 1e3,
                        faulted_p95_ms=p95 * 1e3,
                        delta_p95_ms=(p95 - mean_base_p95) * 1e3,
                        baseline_ssim=mean_base_ssim,
                        faulted_ssim=ssim,
                        delta_ssim=ssim - mean_base_ssim,
                        delta_freeze=freeze - mean_base_freeze,
                        recovery_s=(
                            float(np.mean(bucket["recovery"]))
                            if bucket["recovery"]
                            else None
                        ),
                        unrecovered=unrecovered[fault],
                    )
                )

    return RobustnessReport(
        scenarios=tuple(scenario_names),
        faults=tuple(fault_names),
        policies=tuple(p.value for p in policies),
        seeds=tuple(seeds),
        duration=duration,
        fault_at=fault_at,
        measure_from=MEASURE_FROM,
        cells=cells,
    )


def run_matrix(
    scenario_names: tuple[str, ...] = DEFAULT_SCENARIOS,
    fault_names: tuple[str, ...] = DEFAULT_FAULTS,
    policies: tuple[PolicyName, ...] = DEFAULT_POLICIES,
    seeds: tuple[int, ...] = (1, 2),
    duration: float = DURATION,
    fault_at: float = FAULT_AT,
) -> RobustnessReport:
    """Run the scenario × fault grid and aggregate the degradation.

    Per (scenario, policy, seed): one clean baseline session plus one
    session per fault schedule, all batched through a single
    :func:`run_many` call so caching and worker fan-out apply. The
    deltas in each cell compare against the *same-seed* baseline, so
    encoder noise and content draws cancel out exactly.
    """
    batch = plan_batch(
        scenario_names, fault_names, policies, seeds, duration, fault_at
    )
    return report_from_results(
        run_many(batch),
        scenario_names,
        fault_names,
        policies,
        seeds,
        duration,
        fault_at,
    )
