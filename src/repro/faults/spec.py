"""Declarative fault specifications and schedules.

A :class:`FaultSpec` names one timed perturbation of the control loop —
a feedback blackout, an encoder stall, a link flap — and a
:class:`FaultSchedule` is a validated, serializable list of them. The
schedule is part of :class:`~repro.pipeline.config.SessionConfig`, so it
flows through config hashing (result cache), the process-pool boundary,
and the robustness experiment unchanged: **same seed + same schedule =
bit-identical run**.

Fault kinds and the layer they attack:

=====================  =========  =========================================
kind                   layer      effect
=====================  =========  =========================================
``feedback_blackout``  rtp/cc     all reverse-path RTCP/TWCC packets dropped
``rtcp_delay``         rtp/cc     reverse-path packets held ``delay`` extra
``encoder_stall``      codec      frames submitted during the window finish
                                  only after it ends (hung encoder)
``keyframe_storm``     codec      a keyframe forced every ``interval`` s
``capacity_outage``    netsim     capacity clamped to ``rate_bps`` (0 = dead)
``link_flap``          netsim     capacity alternates dead ``down_time`` /
                                  alive ``up_time`` across the window
``loss_storm``         netsim     bursty Gilbert–Elliott channel loss
``cross_traffic_surge``  netsim   CBR competitor at ``rate_bps``
=====================  =========  =========================================

Random schedules are generated from :class:`~repro.simcore.rng.RngStreams`
(:func:`random_schedule`), so chaos sweeps are reproducible end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from enum import Enum
from typing import Sequence

from ..errors import ConfigError
from ..simcore.rng import RngStreams


class FaultKind(Enum):
    """The fault library (see module docstring for semantics)."""

    FEEDBACK_BLACKOUT = "feedback_blackout"
    RTCP_DELAY = "rtcp_delay"
    ENCODER_STALL = "encoder_stall"
    KEYFRAME_STORM = "keyframe_storm"
    CAPACITY_OUTAGE = "capacity_outage"
    LINK_FLAP = "link_flap"
    LOSS_STORM = "loss_storm"
    CROSS_TRAFFIC_SURGE = "cross_traffic_surge"


#: Kinds applied by rewriting the capacity trace before the run.
CAPACITY_KINDS = (FaultKind.CAPACITY_OUTAGE, FaultKind.LINK_FLAP)


@dataclass(frozen=True)
class FaultSpec:
    """One timed fault. Unused knobs stay at their defaults.

    Attributes:
        kind: which perturbation to apply.
        start: window start (simulation seconds, >= 0).
        duration: window length in seconds (> 0).
        delay: extra one-way delay for reverse-path packets
            (``rtcp_delay`` only).
        rate_bps: surge rate (``cross_traffic_surge``) or capacity floor
            (``capacity_outage``; 0 = full outage).
        interval: keyframe period (``keyframe_storm`` only).
        up_time / down_time: alive/dead spans of a ``link_flap``.
        probability: bad-state loss probability of a ``loss_storm``.
        burst_packets / gap_packets: mean bad/good state residence of a
            ``loss_storm``, in packets (Gilbert–Elliott transition
            probabilities are their reciprocals).
    """

    kind: FaultKind
    start: float
    duration: float
    delay: float = 0.0
    rate_bps: float = 0.0
    interval: float = 0.0
    up_time: float = 0.0
    down_time: float = 0.0
    probability: float = 1.0
    burst_packets: float = 8.0
    gap_packets: float = 32.0

    @property
    def end(self) -> float:
        """Window end (``start + duration``)."""
        return self.start + self.duration

    def label(self) -> str:
        """Short human name, e.g. ``link_flap@10s``."""
        return f"{self.kind.value}@{self.start:g}s"

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range parameters."""
        if not isinstance(self.kind, FaultKind):
            raise ConfigError(f"kind must be a FaultKind, got {self.kind!r}")
        if self.start < 0:
            raise ConfigError(f"fault start must be >= 0, got {self.start!r}")
        if self.duration <= 0:
            raise ConfigError(
                f"fault duration must be positive, got {self.duration!r}"
            )
        kind = self.kind
        if kind is FaultKind.RTCP_DELAY and self.delay <= 0:
            raise ConfigError(
                f"rtcp_delay needs delay > 0, got {self.delay!r}"
            )
        if kind is FaultKind.KEYFRAME_STORM and self.interval <= 0:
            raise ConfigError(
                f"keyframe_storm needs interval > 0, got {self.interval!r}"
            )
        if kind is FaultKind.CROSS_TRAFFIC_SURGE and self.rate_bps <= 0:
            raise ConfigError(
                f"cross_traffic_surge needs rate_bps > 0, "
                f"got {self.rate_bps!r}"
            )
        if kind is FaultKind.CAPACITY_OUTAGE and self.rate_bps < 0:
            raise ConfigError(
                f"capacity_outage floor must be >= 0, got {self.rate_bps!r}"
            )
        if kind is FaultKind.LINK_FLAP and (
            self.up_time <= 0 or self.down_time <= 0
        ):
            raise ConfigError(
                "link_flap needs up_time > 0 and down_time > 0, got "
                f"{self.up_time!r}/{self.down_time!r}"
            )
        if kind is FaultKind.LOSS_STORM:
            if not 0 < self.probability <= 1:
                raise ConfigError(
                    f"loss_storm probability must be in (0, 1], "
                    f"got {self.probability!r}"
                )
            if self.burst_packets < 1 or self.gap_packets < 1:
                raise ConfigError(
                    "loss_storm burst_packets and gap_packets must be "
                    f">= 1, got {self.burst_packets!r}/{self.gap_packets!r}"
                )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload (kind as its string value)."""
        out: dict = {"kind": self.kind.value}
        for f in fields(self):
            if f.name == "kind":
                continue
            out[f.name] = float(getattr(self, f.name))
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Rebuild a spec previously produced by :meth:`to_dict`."""
        payload = dict(data)
        payload["kind"] = FaultKind(payload["kind"])
        return cls(**payload)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, validated collection of timed faults."""

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        # Accept any iterable for ergonomics; store a hashable tuple.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def validate(self) -> None:
        """Validate every spec."""
        for spec in self.specs:
            spec.validate()

    # ------------------------------------------------------------------
    def by_kind(self, *kinds: FaultKind) -> tuple[FaultSpec, ...]:
        """Specs of the given kind(s), in schedule order."""
        return tuple(s for s in self.specs if s.kind in kinds)

    def windows(self, *kinds: FaultKind) -> list[tuple[float, float]]:
        """Sorted ``(start, end)`` windows of the given kind(s)."""
        return sorted((s.start, s.end) for s in self.by_kind(*kinds))

    def end_time(self) -> float:
        """When the last fault is over (0.0 for an empty schedule)."""
        if not self.specs:
            return 0.0
        return max(s.end for s in self.specs)

    def shifted(self, offset: float) -> "FaultSchedule":
        """A copy with every window moved by ``offset`` seconds."""
        return FaultSchedule(
            tuple(replace(s, start=s.start + offset) for s in self.specs)
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload."""
        return {"specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Rebuild a schedule previously produced by :meth:`to_dict`."""
        return cls(tuple(FaultSpec.from_dict(s) for s in data["specs"]))

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultSchedule":
        """Convenience constructor from individual specs."""
        return cls(tuple(specs))


def random_schedule(
    rng: RngStreams,
    duration: float,
    count: int = 3,
    kinds: Sequence[FaultKind] | None = None,
    stream: str = "fault-schedule",
) -> FaultSchedule:
    """A reproducible random schedule of ``count`` faults.

    Fault windows land in the first 80% of ``duration`` (so recovery is
    observable) with 0.5–3 s lengths and kind-appropriate parameters.
    The draw order is fixed, so the same master seed always yields the
    same schedule.
    """
    if duration <= 0:
        raise ConfigError(f"duration must be positive, got {duration!r}")
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count!r}")
    pool: tuple[FaultKind, ...] = (
        tuple(kinds) if kinds is not None else tuple(FaultKind)
    )
    if not pool:
        raise ConfigError("kinds must not be empty")
    gen = rng.stream(stream)
    specs = []
    for _ in range(count):
        kind = pool[int(gen.integers(0, len(pool)))]
        start = float(gen.uniform(0.05, 0.8)) * duration
        length = float(gen.uniform(0.5, 3.0))
        spec = FaultSpec(
            kind=kind,
            start=start,
            duration=length,
            delay=float(gen.uniform(0.1, 0.5)),
            rate_bps=(
                float(gen.uniform(0.5e6, 2e6))
                if kind is FaultKind.CROSS_TRAFFIC_SURGE
                else 0.0
            ),
            interval=float(gen.uniform(0.1, 0.4)),
            up_time=float(gen.uniform(0.2, 0.8)),
            down_time=float(gen.uniform(0.1, 0.5)),
            probability=float(gen.uniform(0.5, 1.0)),
            burst_packets=float(gen.uniform(4.0, 16.0)),
            gap_packets=float(gen.uniform(16.0, 64.0)),
        )
        specs.append(spec)
    specs.sort(key=lambda s: (s.start, s.kind.value))
    schedule = FaultSchedule(tuple(specs))
    schedule.validate()
    return schedule
