"""Runtime fault injection: timers that apply and revoke faults.

The :class:`FaultInjector` arms deterministic scheduler timers for the
faults that need runtime action — feedback blackouts and RTCP delay
spikes (a reverse-path hook on the duplex network), encoder stalls and
keyframe storms (encoder control surface), and cross-traffic surges
(extra CBR senders). Capacity and loss faults are applied at build time
(:mod:`repro.faults.apply`); the injector still marks their windows so
every fault shows up in telemetry and in :attr:`FaultInjector.events`.

Injected timers never consume randomness from other components' streams
and never reorder existing events (the scheduler fires ties in
scheduling order, and all injector timers are armed up front), so a
faulted run is exactly as reproducible as a clean one.
"""

from __future__ import annotations

from ..netsim.crosstraffic import CbrCrossTraffic
from ..simcore.scheduler import Scheduler
from ..telemetry.recorder import NULL_TELEMETRY, Telemetry
from .spec import FaultKind, FaultSchedule, FaultSpec


class FaultInjector:
    """Arms one session's fault schedule onto its scheduler.

    Args:
        scheduler: the session's event scheduler.
        schedule: validated fault schedule.
        encoder: the session's encoder (stall / keyframe faults); may be
            ``None`` if the schedule has no codec faults.
        network: the session's duplex network (reverse-path faults and
            cross-traffic surges); may be ``None`` if unused.
        telemetry: recorder for fault event marks (optional).

    Attributes:
        events: ``(time, label, applied)`` tuples appended as fault
            windows open (``True``) and close (``False``) — diagnostics
            that work with telemetry off.
        cross_traffic: the surge generators owned by this injector.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        schedule: FaultSchedule,
        encoder=None,
        network=None,
        telemetry: Telemetry | None = None,
    ) -> None:
        schedule.validate()
        self._scheduler = scheduler
        self.schedule = schedule
        self._encoder = encoder
        self._network = network
        self._telemetry = telemetry or NULL_TELEMETRY
        self.events: list[tuple[float, str, bool]] = []
        self.cross_traffic: list[CbrCrossTraffic] = []
        self._blackouts = schedule.windows(FaultKind.FEEDBACK_BLACKOUT)
        self._delays = [
            (s.start, s.end, s.delay)
            for s in schedule.by_kind(FaultKind.RTCP_DELAY)
        ]
        self._arm()

    # ------------------------------------------------------------------
    def _arm(self) -> None:
        if (self._blackouts or self._delays) and self._network is not None:
            self._network.set_reverse_fault(self._reverse_verdict)
        for index, spec in enumerate(self.schedule):
            kind = spec.kind
            if kind is FaultKind.ENCODER_STALL:
                self._scheduler.call_at(
                    spec.start,
                    lambda s=spec: self._encoder.set_stall_until(s.end),
                )
                self._scheduler.call_at(
                    spec.end,
                    lambda: self._encoder.set_stall_until(None),
                )
            elif kind is FaultKind.KEYFRAME_STORM:
                self._scheduler.call_at(
                    spec.start, lambda s=spec: self._storm_tick(s)
                )
            elif kind is FaultKind.CROSS_TRAFFIC_SURGE:
                self.cross_traffic.append(
                    CbrCrossTraffic(
                        self._scheduler,
                        self._network.send_forward,
                        spec.rate_bps,
                        start_at=spec.start,
                        stop_at=spec.end,
                        flow=f"cross-fault-{index}",
                    )
                )
            # Every window — including the build-time capacity/loss
            # faults — gets open/close marks.
            self._scheduler.call_at(
                spec.start, lambda s=spec: self._mark(s, True)
            )
            self._scheduler.call_at(
                spec.end, lambda s=spec: self._mark(s, False)
            )

    # ------------------------------------------------------------------
    def _mark(self, spec: FaultSpec, applied: bool) -> None:
        now = self._scheduler.now
        self.events.append((now, spec.label(), applied))
        telemetry = self._telemetry
        if telemetry.enabled:
            telemetry.count(
                "faults.applied" if applied else "faults.revoked"
            )
            telemetry.probe(
                f"fault.{spec.kind.value}", now, 1.0 if applied else 0.0
            )
            telemetry.probe(
                "fault.active_count",
                now,
                float(self.active_count(now)),
            )

    def active_count(self, time: float) -> int:
        """How many fault windows contain ``time``.

        The close boundary counts as inactive, matching the injector's
        apply/revoke timers.
        """
        return sum(
            1 for s in self.schedule if s.start <= time < s.end
        )

    # ------------------------------------------------------------------
    def _storm_tick(self, spec: FaultSpec) -> None:
        now = self._scheduler.now
        if now >= spec.end:
            return
        self._encoder.request_keyframe()
        self._telemetry.count("faults.forced_keyframes")
        self._scheduler.call_in(
            spec.interval, lambda: self._storm_tick(spec)
        )

    def _reverse_verdict(self, packet) -> float | None:
        """Reverse-path fate: ``None`` drops, a float adds entry delay."""
        now = self._scheduler.now
        for start, end in self._blackouts:
            if start <= now < end:
                self._telemetry.count("faults.feedback_dropped")
                return None
        for start, end, delay in self._delays:
            if start <= now < end:
                self._telemetry.count("faults.feedback_delayed")
                return delay
        return 0.0
