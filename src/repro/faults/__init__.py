"""Deterministic fault injection for RTC sessions.

Declarative :class:`FaultSchedule`s (validated, serializable, optionally
generated from seeded RNG streams) perturb a session's control loop —
feedback blackouts, RTCP delay spikes, encoder stalls, keyframe storms,
capacity outages, link flaps, loss storms, cross-traffic surges — while
keeping runs bit-reproducible. Attach one via
``SessionConfig(faults=...)``; sessions without a schedule are untouched.

See ``docs/robustness.md`` for the robustness-matrix experiment built on
top of this package.
"""

from .apply import (
    WindowedLoss,
    capacity_fault_windows,
    faulted_capacity,
    faulted_loss,
)
from .injector import FaultInjector
from .spec import (
    CAPACITY_KINDS,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    random_schedule,
)

__all__ = [
    "CAPACITY_KINDS",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "WindowedLoss",
    "capacity_fault_windows",
    "faulted_capacity",
    "faulted_loss",
    "random_schedule",
]
