"""Build-time fault application: capacity rewrites and windowed loss.

Two fault families are applied *constructively*, before the simulation
starts, rather than by runtime timers:

* **Capacity faults** (``capacity_outage``, ``link_flap``) rewrite the
  bottleneck's :class:`~repro.traces.BandwidthTrace`. This preserves the
  link's mid-packet capacity integration exactly — a packet in service
  when the outage hits stalls in place, just like a sudden drop from the
  original trace would slow it.
* **Loss storms** wrap the channel loss model in a
  :class:`WindowedLoss` that consults a per-storm Gilbert–Elliott chain
  inside each window and falls back to the base model outside.

Both are pure functions of (config, schedule, seed): no wall-clock, no
shared state, so faulted runs stay bit-reproducible.
"""

from __future__ import annotations

from ..netsim.loss import GilbertElliott, LossModel, NoLoss
from ..netsim.packet import Packet
from ..simcore.clock import Clock
from ..simcore.rng import RngStreams
from ..traces.bandwidth import BandwidthTrace
from .spec import CAPACITY_KINDS, FaultKind, FaultSchedule


def capacity_fault_windows(
    schedule: FaultSchedule,
) -> list[tuple[float, float, float]]:
    """``(start, end, floor_bps)`` clamps implied by the schedule.

    A ``capacity_outage`` clamps its whole window to ``rate_bps``; a
    ``link_flap`` expands into alternating dead spans (``down_time`` at
    rate 0, then ``up_time`` untouched) across its window.
    """
    windows: list[tuple[float, float, float]] = []
    for spec in schedule.by_kind(*CAPACITY_KINDS):
        if spec.kind is FaultKind.CAPACITY_OUTAGE:
            windows.append((spec.start, spec.end, spec.rate_bps))
            continue
        t = spec.start
        while t < spec.end:
            down_end = min(t + spec.down_time, spec.end)
            windows.append((t, down_end, 0.0))
            t = down_end + spec.up_time
    return sorted(windows)


def faulted_capacity(
    trace: BandwidthTrace, schedule: FaultSchedule
) -> BandwidthTrace:
    """``trace`` with the schedule's capacity clamps applied.

    The effective rate at any time is the minimum of the underlying
    trace and every active clamp, so overlapping faults compose (the
    harshest one wins). Returns ``trace`` itself when the schedule has
    no capacity faults.
    """
    windows = capacity_fault_windows(schedule)
    if not windows:
        return trace
    boundaries = {t for t, _ in trace.breakpoints()}
    for start, end, _ in windows:
        boundaries.add(start)
        boundaries.add(end)
    times = sorted(boundaries)
    rates = []
    for t in times:
        rate = trace.rate_at(t)
        for start, end, floor in windows:
            if start <= t < end:
                rate = min(rate, floor)
        rates.append(rate)
    return BandwidthTrace.from_samples(times, rates)


class WindowedLoss(LossModel):
    """Channel loss that switches models inside fault windows.

    Args:
        clock: the simulation clock (loss is evaluated at serialization
            end, so the decision time is the clock's *now*).
        base: model in effect outside every storm window.
        storms: ``(start, end, model)`` windows; the first window
            containing *now* wins.
    """

    def __init__(
        self,
        clock: Clock,
        base: LossModel,
        storms: list[tuple[float, float, LossModel]],
    ) -> None:
        self._clock = clock
        self._base = base
        self._storms = list(storms)

    def should_drop(self, packet: Packet) -> bool:
        return self.should_drop_at(packet, self._clock._now)

    def should_drop_at(self, packet: Packet, time: float) -> bool:
        """Window membership from the explicit serialization-finish
        ``time`` (not the clock), so the batched kernel's ahead-of-clock
        drain planning picks the same model — and draws the same RNG
        sequence — as the serial finish event would."""
        for start, end, model in self._storms:
            if start <= time < end:
                return model.should_drop(packet)
        return self._base.should_drop(packet)


def faulted_loss(
    schedule: FaultSchedule,
    base: LossModel | None,
    rng: RngStreams,
    clock: Clock,
) -> LossModel | None:
    """The channel loss model with the schedule's loss storms applied.

    Each ``loss_storm`` becomes its own Gilbert–Elliott chain on its own
    named RNG stream (draws inside one storm never perturb another).
    Returns ``base`` unchanged when the schedule has no storms.
    """
    storms = schedule.by_kind(FaultKind.LOSS_STORM)
    if not storms:
        return base
    windows: list[tuple[float, float, LossModel]] = []
    for index, spec in enumerate(storms):
        model = GilbertElliott(
            p_good_to_bad=1.0 / spec.gap_packets,
            p_bad_to_good=1.0 / spec.burst_packets,
            loss_good=0.0,
            loss_bad=spec.probability,
            rng=rng,
            stream=f"fault-loss-storm-{index}",
        )
        windows.append((spec.start, spec.end, model))
    return WindowedLoss(clock, base or NoLoss(), windows)
