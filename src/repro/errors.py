"""Exception hierarchy and error taxonomy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with a single ``except``
clause while still distinguishing configuration mistakes from runtime
simulation faults.

Batch execution adds a second axis: the **error taxonomy**
(:class:`ErrorClass`, :func:`classify_error`) that the supervised
executor (:mod:`repro.pipeline.supervisor`) uses to drive its retry
policy — transient and infrastructure failures are retried with
backoff, deterministic failures are quarantined immediately (rerunning
a deterministic simulation reproduces the same crash).

The module also pins the CLI's documented exit codes (see
``docs/robustness.md``).
"""

from __future__ import annotations

import enum

# ----------------------------------------------------------------------
# Documented CLI exit codes (see docs/robustness.md)
# ----------------------------------------------------------------------
#: Everything ran and every cell succeeded.
EXIT_OK = 0
#: Unexpected library error (a ReproError escaped to the top level).
EXIT_ERROR = 1
#: Bad usage / configuration (ConfigError, unwritable paths, …).
EXIT_USAGE = 2
#: The batch *completed* but one or more cells were quarantined and
#: rendered as FAILED(...) markers in the report.
EXIT_PARTIAL = 3
#: Interrupted by SIGINT; pending work cancelled, manifest flushed.
EXIT_INTERRUPT = 130


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """The simulation reached an invalid internal state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped scheduler."""


class TraceError(ReproError):
    """A bandwidth or content trace is malformed."""


class CodecError(ReproError):
    """The encoder model was driven outside its valid operating range."""


class TransportError(ReproError):
    """RTP packetization/reassembly violated an invariant."""


# ----------------------------------------------------------------------
# Batch-execution taxonomy
# ----------------------------------------------------------------------
class ExecutionError(ReproError):
    """A session failed to execute (as opposed to simulating wrongly)."""


class TransientError(ExecutionError):
    """A failure that may succeed on retry (load, timing, flaky I/O)."""


class SessionTimeoutError(TransientError):
    """A session exceeded its wall-clock budget and was abandoned."""


class WorkerCrashError(ExecutionError):
    """A worker process died (OOM-kill, segfault, SIGKILL)."""


class BatchInterrupted(ExecutionError):
    """A batch was cancelled by SIGINT before it completed."""


class LeaseConflictError(ExecutionError):
    """Two workers contend for the same shard cells.

    Raised by the shard fabric's work-stealing path when a steal
    targets cells whose owner still holds a **live** heartbeat lease
    (see :mod:`repro.pipeline.shards`). The other worker is alive and
    responsible for the cells, so retrying locally is wrong — the
    contender should back off and let the lease run.
    """


class ErrorClass(enum.Enum):
    """Retry-relevant classification of an execution failure.

    * ``TRANSIENT`` — may succeed on retry (timeouts, declared-flaky
      errors): retried with exponential backoff.
    * ``DETERMINISTIC`` — rerunning reproduces the same failure
      (simulation invariants, bad math, config-dependent crashes):
      never retried, quarantined on first sight.
    * ``INFRASTRUCTURE`` — the substrate failed, not the session
      (broken process pool, OS errors, memory pressure): retried after
      the pool is respawned.
    * ``CONTENTION`` — another live worker owns the work (a held
      heartbeat lease, a claim file that lost the race): never retried
      by the loser — the owner finishes the cell, and hammering it
      would thunder the herd the lease exists to prevent.
    """

    TRANSIENT = "transient"
    DETERMINISTIC = "deterministic"
    INFRASTRUCTURE = "infrastructure"
    CONTENTION = "contention"


def classify_error(exc: BaseException) -> ErrorClass:
    """Map an exception raised while executing a session to its class.

    The dispatch is intentionally conservative: anything not positively
    identified as transient or infrastructure is DETERMINISTIC, because
    sessions are pure functions of their config — an unknown failure
    will recur on every retry and should be quarantined, not hammered.
    """
    from concurrent.futures import BrokenExecutor

    # Lease conflicts are contention, not failure: the cell's owner is
    # alive. Tested first — LeaseConflictError is an ExecutionError and
    # must not fall through to the deterministic default.
    if isinstance(exc, LeaseConflictError):
        return ErrorClass.CONTENTION
    # TimeoutError must be tested before OSError (its base since 3.10).
    if isinstance(exc, (TransientError, TimeoutError)):
        return ErrorClass.TRANSIENT
    if isinstance(exc, (WorkerCrashError, BrokenExecutor, MemoryError, OSError)):
        return ErrorClass.INFRASTRUCTURE
    return ErrorClass.DETERMINISTIC
