"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with a single ``except``
clause while still distinguishing configuration mistakes from runtime
simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """The simulation reached an invalid internal state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped scheduler."""


class TraceError(ReproError):
    """A bandwidth or content trace is malformed."""


class CodecError(ReproError):
    """The encoder model was driven outside its valid operating range."""


class TransportError(ReproError):
    """RTP packetization/reassembly violated an invariant."""
