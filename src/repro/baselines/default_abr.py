"""Baseline: stock x264 ABR with periodic application-level reconfig.

This is the "current video encoders adjust bitrates too slowly" strawman
of the paper, modelled after applications that read the congestion
controller's target and reconfigure the encoder on a timer (once per
second by default):

* the *application loop* adds up to ``update_interval`` of staleness;
* the *encoder loop* (x264 ABR windows, qp_step clamp) then needs on
  the order of a second more to actually move the output bitrate.

The pacer follows the congestion controller continuously (as libwebrtc's
does), so during the lag the mismatch shows up as pacer + bottleneck
queueing — i.e., latency.
"""

from __future__ import annotations

from ..codec.encoder import SimulatedEncoder
from ..core.interface import EncoderAdaptation, FrameDirective
from ..errors import ConfigError
from ..cc.interface import CongestionController
from ..rtp.feedback import FeedbackReport, PacketResult
from ..rtp.pacer import Pacer


class DefaultAbrPolicy(EncoderAdaptation):
    """Slow, timer-driven encoder reconfiguration."""

    def __init__(
        self,
        encoder: SimulatedEncoder,
        pacer: Pacer,
        controller: CongestionController,
        update_interval: float = 1.0,
    ) -> None:
        if update_interval <= 0:
            raise ConfigError("update_interval must be positive")
        self._encoder = encoder
        self._pacer = pacer
        self._cc = controller
        self._interval = update_interval
        self._last_reconfig = float("-inf")
        self.reconfig_count = 0

    def on_feedback(
        self,
        now: float,
        report: FeedbackReport,
        results: list[PacketResult],
    ) -> None:
        """Pacer tracks CC continuously; encoder only on the timer."""
        self._pacer.set_target_rate(self._cc.target_bps())
        if now - self._last_reconfig >= self._interval:
            self._last_reconfig = now
            self._encoder.set_target_bitrate(self._cc.target_bps())
            self.reconfig_count += 1

    def before_frame(
        self, now: float, capture_index: int = 0
    ) -> FrameDirective:
        """No per-frame intervention."""
        return FrameDirective()
