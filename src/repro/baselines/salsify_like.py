"""Baseline: Salsify-like functional per-frame adaptation.

Salsify (NSDI'18) couples the encoder and transport per frame: every
frame is sized to what the transport believes the network can take right
now. We model its *functional* behaviour — a per-frame hard size budget
derived from a fast throughput estimate, plus pausing when the network
is backlogged — without Salsify's dual-encoder implementation trick.

This is an always-on version of the paper's per-frame budgeting, useful
as an upper-baseline: it reacts as fast, but pays a small steady-state
efficiency/quality cost because *every* frame is hard-capped against
transient estimate dips (and its budget ignores rate-control smoothing
entirely).
"""

from __future__ import annotations

from ..cc.gcc.gcc import GoogCcController
from ..codec.encoder import SimulatedEncoder
from ..core.detector import Ewma, NetworkStateEstimator
from ..core.interface import EncoderAdaptation, FrameDirective
from ..errors import ConfigError
from ..rtp.feedback import FeedbackReport, PacketResult
from ..rtp.pacer import Pacer


class SalsifyLikePolicy(EncoderAdaptation):
    """Per-frame budgeting from a fast delivered-rate estimate."""

    def __init__(
        self,
        encoder: SimulatedEncoder,
        pacer: Pacer,
        gcc: GoogCcController,
        fps: float,
        margin: float = 0.85,
        pause_queuing_delay: float = 0.10,
        max_consecutive_skips: int = 5,
    ) -> None:
        if fps <= 0:
            raise ConfigError("fps must be positive")
        if not 0 < margin <= 1:
            raise ConfigError("margin must be in (0, 1]")
        self._encoder = encoder
        self._pacer = pacer
        self._gcc = gcc
        self._fps = fps
        self._margin = margin
        self._pause_threshold = pause_queuing_delay
        self._max_skips = max_consecutive_skips
        self._fast_rate = Ewma(0.15)
        self._network = NetworkStateEstimator()
        self._consecutive_skips = 0
        self.frames_skipped = 0

    def on_feedback(
        self,
        now: float,
        report: FeedbackReport,
        results: list[PacketResult],
    ) -> None:
        """Track delivered rate and queuing delay."""
        self._network.on_results(now, results)
        acked = self._gcc.acked_bps(now)
        if acked is not None:
            self._fast_rate.update(acked, now)
        estimate = self._current_estimate()
        self._pacer.set_target_rate(estimate)
        self._encoder.set_target_bitrate(estimate)

    def before_frame(
        self, now: float, capture_index: int = 0
    ) -> FrameDirective:
        """Hard-cap every frame; pause when the path is backlogged."""
        backlog = (
            self._network.queuing_delay(now) + self._pacer.queue_delay()
        )
        if (
            backlog > self._pause_threshold
            and self._consecutive_skips < self._max_skips
        ):
            self._consecutive_skips += 1
            self.frames_skipped += 1
            return FrameDirective(skip=True)
        self._consecutive_skips = 0
        budget = self._margin * self._current_estimate() / self._fps
        return FrameDirective(max_bits=max(budget, 1.0))

    def _current_estimate(self) -> float:
        # The delivered rate only measures capacity while the path is
        # backlogged; an app-limited flow must trust the CC target, or
        # the estimate feeds back on itself and spirals down.
        congested = (
            self._network.queuing_delay() > 0.02
            or self._pacer.queue_delay() > 0.02
        )
        fast = self._fast_rate.value
        if congested and fast is not None and fast > 0:
            return min(fast, self._gcc.target_bps())
        return self._gcc.target_bps()
