"""Baseline: libwebrtc-like coupling (continuous SetRates).

The encoder target is refreshed from the congestion controller on every
feedback batch — no application staleness — but the update goes through
the *standard* x264 reconfig path, so the encoder's internal rate-control
windows still converge over many frames. This isolates the encoder-side
slowness the paper attacks: even with a perfect app loop, the output
bitrate lags the target.
"""

from __future__ import annotations

from ..cc.interface import CongestionController
from ..codec.encoder import SimulatedEncoder
from ..core.interface import EncoderAdaptation, FrameDirective
from ..rtp.feedback import FeedbackReport, PacketResult
from ..rtp.pacer import Pacer


class WebrtcLikePolicy(EncoderAdaptation):
    """Continuous target propagation through the slow encoder path."""

    def __init__(
        self,
        encoder: SimulatedEncoder,
        pacer: Pacer,
        controller: CongestionController,
    ) -> None:
        self._encoder = encoder
        self._pacer = pacer
        self._cc = controller

    def on_feedback(
        self,
        now: float,
        report: FeedbackReport,
        results: list[PacketResult],
    ) -> None:
        """Apply the CC target immediately (standard reconfig)."""
        target = self._cc.target_bps()
        self._pacer.set_target_rate(target)
        self._encoder.set_target_bitrate(target)

    def before_frame(
        self, now: float, capture_index: int = 0
    ) -> FrameDirective:
        """No per-frame intervention."""
        return FrameDirective()
