"""Baseline encoder-adaptation policies the paper compares against."""

from .default_abr import DefaultAbrPolicy
from .salsify_like import SalsifyLikePolicy
from .webrtc_like import WebrtcLikePolicy

__all__ = ["DefaultAbrPolicy", "SalsifyLikePolicy", "WebrtcLikePolicy"]
