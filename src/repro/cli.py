"""Command-line interface: ``repro-rtc``.

Subcommands:

* ``run`` — one session (policy, drop ratio, duration, seed) with a
  summary printout.
* ``table1`` — regenerate the headline table.
* ``figure`` — print one figure's data series.
* ``compare`` — all policies on one scenario.
* ``trace`` — run one telemetry-enabled session and export its probe
  series as JSONL or CSV (see ``docs/telemetry.md``).
* ``profile`` — run one pinned session under cProfile and print the
  top-N hotspots as text or JSON (see ``docs/running-fast.md``).
* ``chaos`` — run the fault-injection robustness matrix and export the
  degradation report as a table, JSON, or CSV (see
  ``docs/robustness.md``).
* ``fleet`` — run city-scale SFU fleet population scenarios (churn,
  flash crowds, regional degradation) and export the population QoE
  report (see ``docs/fleet.md``).
* ``resume`` — replay an interrupted supervised batch from its run
  manifest; finished cells come from the result cache.
* ``shard`` — the distributed sweep fabric (see
  ``docs/running-fast.md``): ``shard plan`` partitions a grid into K
  deterministic shards, ``shard run`` executes one shard anywhere with
  the supervised executor (per-shard manifest + cache + heartbeat
  lease, resumable via ``repro-rtc resume``), ``shard steal`` (or
  ``shard run --steal``) reclaims dead shards' unfinished cells,
  ``shard status`` reports per-shard progress and lease health,
  and ``shard merge`` folds shard outputs into one report
  byte-identical to a single-host serial run.
* ``cache`` — inspect or clear the persistent result cache.

Global execution options (before the subcommand): ``--workers N`` fans
the experiment's sessions out over N processes; results are reused from
the persistent cache unless ``--no-cache`` is given. Parallel and cached
results are bit-identical to serial fresh runs.

Supervision options (on ``run``/``table1``/``chaos``/``fleet``):
``--session-timeout``, ``--max-retries``, and ``--manifest`` enable the
supervised executor — per-session wall-clock timeouts, bounded retries,
worker-crash recovery, quarantine with ``FAILED(...)`` markers, and a
persistent run manifest for ``resume`` (see ``docs/robustness.md``).
Exit codes: 0 ok, 1 error, 2 usage, 3 partial (quarantined sessions in
the output), 130 interrupted.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from pathlib import Path

from .errors import (
    EXIT_INTERRUPT,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_USAGE,
    ConfigError,
    ReproError,
)
from .experiments import (
    ablations,
    comparison,
    figures,
    fleet,
    robustness,
    scenarios,
    table1,
)
from .metrics.summary import format_series
from .pipeline.config import PolicyName
from .pipeline.manifest import (
    RunManifest,
    find_manifest,
    manifest_dir,
    new_run_id,
)
from .pipeline import shards
from .pipeline.parallel import ResultCache, configure, run_many
from .pipeline.runner import run_session
from .pipeline.supervisor import (
    FailedSession,
    RetryPolicy,
    SupervisorPlan,
    SupervisorPolicy,
)
from .simcore.backend import KERNEL_ENV_VAR
from .telemetry import export_text


def _cmd_run(args: argparse.Namespace) -> int:
    config = scenarios.step_drop_config(args.drop_ratio, seed=args.seed)
    config = dataclasses.replace(
        config,
        policy=PolicyName(args.policy),
        duration=args.duration,
    )
    [result] = run_many([config])
    if isinstance(result, FailedSession):
        print(f"policy            : {args.policy}")
        print(f"result            : {result.marker}")
        return 0
    start, end = scenarios.DROP_WINDOW
    print(f"policy            : {result.policy}")
    print(f"frames            : {len(result.frames)}")
    print(f"mean latency      : {result.mean_latency() * 1e3:.1f} ms")
    if end <= args.duration:
        print(
            f"drop-window mean  : {result.mean_latency(start, end) * 1e3:.1f} ms"
        )
        print(
            f"drop-window p95   : "
            f"{result.percentile_latency(95, start, end) * 1e3:.1f} ms"
        )
    print(f"displayed SSIM    : {result.mean_displayed_ssim():.4f}")
    print(f"freeze fraction   : {result.freeze_fraction():.3f}")
    print(f"PLI count         : {result.pli_count}")
    if result.perf is not None:
        print(
            f"perf              : {result.perf.wall_seconds:.3f} s wall, "
            f"{result.perf.events_fired} events "
            f"({result.perf.events_per_sec:,.0f}/s)"
        )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    seeds = tuple(range(1, args.seeds + 1))
    rows = table1.run_table(seeds=seeds)
    text = table1.render(rows, args.format)
    if args.output is None or args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {len(rows)} rows to {args.output}", file=sys.stderr
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    producers = {
        1: lambda: figures.figure1(seed=args.seed),
        2: lambda: figures.figure2(seed=args.seed),
        3: lambda: figures.figure3(seed=args.seed),
        4: lambda: figures.figure4(seeds=(args.seed,)),
    }
    series_map = producers[args.number]()
    for name, series in series_map.items():
        print(format_series(name, series.x, series.y, "x", "y"))
        print()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = comparison.run_comparison(
        drop_ratio=args.drop_ratio, seeds=tuple(range(1, args.seeds + 1))
    )
    print(
        comparison.format_comparison(
            rows, comparison.comparison_title(args.drop_ratio)
        )
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import session_report

    config = scenarios.step_drop_config(args.drop_ratio, seed=args.seed)
    config = dataclasses.replace(
        config,
        policy=PolicyName(args.policy),
        duration=args.duration,
        enable_nack=args.nack,
        enable_audio=args.audio,
    )
    result = run_session(config)
    print(session_report(result))
    if args.audio:
        print()
        print(f"audio mean latency : "
              f"{result.mean_audio_latency() * 1e3:.1f} ms")
        print(f"audio loss         : {result.audio_loss_fraction():.3%}")
    return 0


def _cmd_extensions(args: argparse.Namespace) -> int:
    from .experiments import extensions

    seeds = tuple(range(1, args.seeds + 1))
    print(extensions.format_extension_rows(
        extensions.estimator_comparison(seeds=seeds),
        "Abl. E — delay estimators"))
    print()
    print(extensions.format_extension_rows(
        extensions.recovery_mechanism_comparison(seeds=seeds),
        "Ext. F — PLI vs NACK"))
    print()
    print(extensions.format_extension_rows(
        extensions.aqm_comparison(seeds=seeds),
        "Ext. G — drop-tail vs CoDel"))
    return 0


def _cmd_ablate(args: argparse.Namespace) -> int:
    seeds = tuple(range(1, args.seeds + 1))
    print(ablations.format_rows(
        ablations.detector_ablation(args.drop_ratio, seeds),
        "Ablation A — detector signals"))
    print()
    print(ablations.format_rows(
        ablations.strategy_ablation(args.drop_ratio, seeds),
        "Ablation B — strategies"))
    print()
    print(ablations.format_rows(
        ablations.rtt_sensitivity(args.drop_ratio, seeds=seeds),
        "Ablation C — RTT sensitivity"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = scenarios.step_drop_config(args.drop_ratio, seed=args.seed)
    config = dataclasses.replace(
        config,
        policy=PolicyName(args.policy),
        duration=args.duration,
        enable_telemetry=True,
    )
    result = run_session(config)
    assert result.traces is not None
    if args.list:
        for name in result.traces.series_names():
            print(f"{name}  ({len(result.traces.series(name))} samples)")
        return 0
    try:
        text = export_text(
            result.traces, fmt=args.format, series=args.series or None
        )
    except ReproError as exc:  # unknown --series name
        print(f"repro-rtc: error: {exc}", file=sys.stderr)
        return 2
    if args.output is None or args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {len(result.traces.series_names())} series to "
            f"{args.output}",
            file=sys.stderr,
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .profiling import profile_session

    report = profile_session(
        policy=args.policy,
        drop_ratio=args.drop_ratio,
        duration=args.duration,
        seed=args.seed,
        top=args.top,
        sort=args.sort,
    )
    if args.format == "json":
        text = report.to_json() + "\n"
    else:
        text = report.format_text()
    if args.output is None or args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {len(report.hotspots)} hotspots to {args.output}",
            file=sys.stderr,
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.list_faults:
        for name in robustness.FAULT_NAMES:
            schedule = robustness.fault_suite(args.fault_at)[name]
            labels = ", ".join(spec.label() for spec in schedule)
            print(f"{name:<22} {labels}")
        return 0
    if args.quick:
        scenario_names = ("steady",)
        fault_names = ("feedback_blackout", "capacity_outage")
        policies = (PolicyName.ADAPTIVE,)
        seeds: tuple[int, ...] = (1,)
        duration = 14.0
    else:
        scenario_names = tuple(
            args.scenarios or robustness.DEFAULT_SCENARIOS
        )
        fault_names = tuple(args.faults or robustness.DEFAULT_FAULTS)
        policies = tuple(
            PolicyName(p) for p in (
                args.policies
                or [p.value for p in robustness.DEFAULT_POLICIES]
            )
        )
        seeds = tuple(range(1, args.seeds + 1))
        duration = args.duration
    report = robustness.run_matrix(
        scenario_names=scenario_names,
        fault_names=fault_names,
        policies=policies,
        seeds=seeds,
        duration=duration,
        fault_at=args.fault_at,
    )
    text = robustness.render(report, args.format)
    if args.output is None or args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {len(report.cells)} cells to {args.output}",
            file=sys.stderr,
        )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.list_scenarios:
        for name in sorted(fleet.SCENARIOS):
            doc = (fleet.SCENARIOS[name].__doc__ or "").strip()
            summary = doc.splitlines()[0] if doc else ""
            print(f"{name:<22} {summary}")
        return 0
    if args.quick:
        scenario_names: tuple[str, ...] = (
            "steady", "regional_degradation"
        )
        seeds: tuple[int, ...] = (1,)
        subscribers = 20
        duration = 8.0
    else:
        scenario_names = tuple(
            args.scenarios or fleet.DEFAULT_SCENARIOS
        )
        seeds = tuple(range(1, args.seeds + 1))
        subscribers = args.subscribers
        duration = args.duration
    report = fleet.run_population(
        scenario_names=scenario_names,
        seeds=seeds,
        subscribers=subscribers,
        duration=duration,
    )
    text = fleet.render(report, args.format)
    if args.output is None or args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {len(report.cells)} fleet cells to {args.output}",
            file=sys.stderr,
        )
    if any(cell.failed is not None for cell in report.cells):
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_shard_plan(args: argparse.Namespace) -> int:
    params: dict = {}
    if args.seeds is not None:
        params["seeds"] = list(range(1, args.seeds + 1))
    if args.ratios:
        params["ratios"] = args.ratios
    if args.baseline is not None:
        params["baseline"] = args.baseline
    if args.drop_ratio is not None:
        params["drop_ratio"] = args.drop_ratio
    if args.policies:
        params["policies"] = args.policies
    if args.scenarios:
        params["scenarios"] = args.scenarios
    if args.subscribers is not None:
        params["subscribers"] = args.subscribers
    if args.duration is not None:
        params["duration"] = args.duration
    if args.faults:
        params["faults"] = args.faults
    if args.fault_at is not None:
        params["fault_at"] = args.fault_at
    plan = shards.build_plan(
        args.grid, params, args.shards, striping=args.striping
    )
    if args.output is None or args.output == "-":
        import json

        sys.stdout.write(
            json.dumps(plan.to_dict(), indent=2, sort_keys=True) + "\n"
        )
    else:
        plan.save(args.output)
    print(
        f"repro-rtc: plan {plan.plan_id}: {len(plan.hashes)} cells of "
        f"grid '{plan.kind}' over {plan.shards} shards",
        file=sys.stderr,
    )
    return EXIT_OK


def _cmd_shard_run(args: argparse.Namespace) -> int:
    plan = shards.ShardPlan.load(args.plan)
    retry = (
        RetryPolicy()
        if args.max_retries is None
        else RetryPolicy(max_retries=args.max_retries)
    )
    policy = SupervisorPolicy(
        session_timeout=args.session_timeout, retry=retry
    )
    policy.validate()
    manifest_path = (
        Path(args.manifest)
        if args.manifest is not None
        else shards.shard_dir(args.out, args.index) / "manifest.json"
    )
    try:
        results, splan = shards.run_shard(
            plan,
            args.index,
            args.out,
            workers=max(1, args.workers),
            policy=policy,
            argv=getattr(args, "raw_argv", None),
            manifest_path=manifest_path,
            lease_ttl=args.lease_ttl,
        )
    except KeyboardInterrupt:
        print(
            f"repro-rtc: shard {args.index} interrupted; resume with: "
            f"repro-rtc resume {manifest_path}",
            file=sys.stderr,
        )
        raise
    quarantined = [r for r in results if isinstance(r, FailedSession)]
    print(
        f"repro-rtc: shard {args.index}/{plan.shards} of plan "
        f"{plan.plan_id}: {len(results)} cells, "
        f"{len(results) - len(quarantined)} ok, "
        f"{splan.stats.cached} from cache, "
        f"{len(quarantined)} quarantined "
        f"(manifest: {splan.manifest.path})",
        file=sys.stderr,
    )
    stolen_quarantined = 0
    if args.steal:
        summary, _steal_plan = shards.steal_shard(
            plan,
            args.index,
            args.out,
            workers=max(1, args.workers),
            policy=policy,
            argv=getattr(args, "raw_argv", None),
            lease_ttl=args.lease_ttl,
        )
        _print_steal_summary(args.index, summary)
        stolen_quarantined = summary.quarantined
    if quarantined or stolen_quarantined:
        return EXIT_PARTIAL
    return EXIT_OK


def _print_steal_summary(
    index: int, summary: "shards.StealSummary"
) -> None:
    for problem in summary.problems:
        print(f"repro-rtc: warning: {problem}", file=sys.stderr)
    if summary.skipped_live:
        live = ", ".join(str(s) for s in summary.skipped_live)
        print(
            f"repro-rtc: shard(s) {live} hold live leases; "
            "left alone",
            file=sys.stderr,
        )
    if summary.claimed == 0:
        print(
            f"repro-rtc: shard {index}: nothing to steal",
            file=sys.stderr,
        )
        return
    victims = ", ".join(str(v) for v in summary.victims)
    print(
        f"repro-rtc: shard {index} stole {summary.claimed} cell(s) "
        f"from shard(s) {victims}: {summary.executed} executed, "
        f"{summary.quarantined} quarantined",
        file=sys.stderr,
    )


def _cmd_shard_steal(args: argparse.Namespace) -> int:
    plan = shards.ShardPlan.load(args.plan)
    retry = (
        RetryPolicy()
        if args.max_retries is None
        else RetryPolicy(max_retries=args.max_retries)
    )
    policy = SupervisorPolicy(
        session_timeout=args.session_timeout, retry=retry
    )
    policy.validate()
    summary, _splan = shards.steal_shard(
        plan,
        args.index,
        args.dir,
        workers=max(1, args.workers),
        policy=policy,
        argv=getattr(args, "raw_argv", None),
        victims=args.victims or None,
        lease_ttl=args.lease_ttl,
        grace=args.grace,
    )
    _print_steal_summary(args.index, summary)
    if summary.quarantined:
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_shard_merge(args: argparse.Namespace) -> int:
    plan = shards.ShardPlan.load(args.plan)
    base = Path(args.dir)
    shard_dirs = [
        shards.shard_dir(base, index)
        for index in range(plan.shards)
        if shards.shard_dir(base, index).is_dir()
    ]
    if not shard_dirs:
        raise ConfigError(
            f"no shard directories under {base} (expected "
            f"{shards.SHARD_DIR_FORMAT.format(index=0)} .. "
            f"{shards.SHARD_DIR_FORMAT.format(index=plan.shards - 1)})"
        )
    cache, manifest, summary = shards.merge_shards(
        plan, shard_dirs, args.out
    )
    text, quarantined = shards.render_merged(
        plan, cache, manifest, args.format
    )
    if args.output is None or args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    print(
        f"repro-rtc: merged {summary.shards_seen} shard dir(s) of plan "
        f"{plan.plan_id}: {summary.cells} cells, {summary.ok} ok, "
        f"{summary.quarantined} quarantined "
        f"(merged cache: {cache.root})",
        file=sys.stderr,
    )
    if quarantined:
        print(
            f"repro-rtc: {quarantined} cell(s) quarantined; report "
            "contains FAILED(...) markers",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_shard_status(args: argparse.Namespace) -> int:
    plan = shards.ShardPlan.load(args.plan)
    statuses = shards.shard_status(
        plan, Path(args.dir), strict=args.strict
    )
    for status in statuses:
        for problem in status.problems:
            print(f"repro-rtc: warning: {problem}", file=sys.stderr)
    header = (
        f"{'shard':>5} {'cells':>5} {'pending':>7} {'running':>7} "
        f"{'ok':>5} {'quar':>5} {'lease':>7}  state"
    )
    print(header)
    print("-" * len(header))
    for status in statuses:
        counts = status.counts
        if not status.started:
            state = "not started"
        elif status.done() == status.cells:
            state = "done"
        elif status.problems:
            state = "damaged manifest"
        else:
            state = "in progress"
        print(
            f"{status.index:>5} {status.cells:>5} "
            f"{counts['pending']:>7} {counts['running']:>7} "
            f"{counts['ok']:>5} {counts['quarantined']:>5} "
            f"{status.lease:>7}  {state}"
        )
    total = len(plan.hashes)
    done = sum(status.done() for status in statuses)
    ok = sum(status.counts["ok"] for status in statuses)
    quarantined = sum(
        status.counts["quarantined"] for status in statuses
    )
    started = sum(1 for status in statuses if status.started)
    pct = 100.0 * done / total if total else 0.0
    print(
        f"plan {plan.plan_id}: {done}/{total} cells done "
        f"({pct:.1f}%), {ok} ok, {quarantined} quarantined; "
        f"{started}/{plan.shards} shard(s) started"
    )
    expired = [
        status.index
        for status in statuses
        if status.lease == "expired" and status.done() < status.cells
    ]
    if expired:
        names = ", ".join(str(index) for index in expired)
        print(
            f"shard(s) {names} hold expired leases with unfinished "
            f"cells — reclaim with: repro-rtc shard steal "
            f"{args.plan} --index I --dir {args.dir}"
        )
    return EXIT_OK


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir or ResultCache.default_dir())
    if args.cache_action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
    else:
        print(f"cache dir : {cache.root}")
        print(f"entries   : {len(cache)}")
    return 0


def _add_supervision_flags(parser: argparse.ArgumentParser) -> None:
    """Supervised-execution knobs shared by run/table1/chaos/fleet."""
    group = parser.add_argument_group(
        "supervision",
        "passing any of these enables the supervised executor "
        "(timeouts, retries, quarantine, run manifest; see "
        "docs/robustness.md)",
    )
    group.add_argument(
        "--session-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-session wall-clock limit; a hung session is killed, "
        "retried, and quarantined if it never finishes",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry budget per session for transient/infrastructure "
        "failures (default: 2)",
    )
    group.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="run-manifest file (default: auto under "
        "$REPRO_MANIFEST_DIR or <cache dir>/runs); pass to "
        "'repro-rtc resume' to continue an interrupted batch",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro-rtc",
        description=(
            "Adaptive video encoder for network bandwidth drops — "
            "simulation and reproduction harness."
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for experiment batches (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-rtc)",
    )
    parser.add_argument(
        "--kernel",
        choices=["auto", "heap", "calendar", "batched"],
        default=None,
        help="event-kernel backend for every session this invocation "
        "runs (sets REPRO_KERNEL, so worker processes inherit it; "
        "all backends are bit-identical — this is a speed knob)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one session")
    run_p.add_argument(
        "--policy",
        choices=[p.value for p in PolicyName],
        default="adaptive",
    )
    run_p.add_argument("--drop-ratio", type=float, default=0.2)
    run_p.add_argument("--duration", type=float, default=25.0)
    run_p.add_argument("--seed", type=int, default=1)
    _add_supervision_flags(run_p)
    run_p.set_defaults(func=_cmd_run)

    t1_p = sub.add_parser("table1", help="regenerate the headline table")
    t1_p.add_argument("--seeds", type=int, default=5)
    t1_p.add_argument(
        "--format",
        choices=["table", "json", "csv"],
        default="table",
        help="output format (default: table)",
    )
    t1_p.add_argument(
        "--output",
        "-o",
        default=None,
        help="output file (default or '-': stdout)",
    )
    _add_supervision_flags(t1_p)
    t1_p.set_defaults(func=_cmd_table1)

    fig_p = sub.add_parser("figure", help="print one figure's data")
    fig_p.add_argument("number", type=int, choices=[1, 2, 3, 4])
    fig_p.add_argument("--seed", type=int, default=1)
    fig_p.set_defaults(func=_cmd_figure)

    cmp_p = sub.add_parser("compare", help="compare all policies")
    cmp_p.add_argument("--drop-ratio", type=float, default=0.2)
    cmp_p.add_argument("--seeds", type=int, default=3)
    cmp_p.set_defaults(func=_cmd_compare)

    abl_p = sub.add_parser("ablate", help="run the ablations")
    abl_p.add_argument("--drop-ratio", type=float, default=0.2)
    abl_p.add_argument("--seeds", type=int, default=3)
    abl_p.set_defaults(func=_cmd_ablate)

    rep_p = sub.add_parser(
        "report", help="full analysis report of one session"
    )
    rep_p.add_argument(
        "--policy",
        choices=[p.value for p in PolicyName],
        default="adaptive",
    )
    rep_p.add_argument("--drop-ratio", type=float, default=0.2)
    rep_p.add_argument("--duration", type=float, default=25.0)
    rep_p.add_argument("--seed", type=int, default=1)
    rep_p.add_argument("--nack", action="store_true")
    rep_p.add_argument("--audio", action="store_true")
    rep_p.set_defaults(func=_cmd_report)

    ext_p = sub.add_parser(
        "extensions", help="estimator/NACK/AQM extension experiments"
    )
    ext_p.add_argument("--seeds", type=int, default=3)
    ext_p.set_defaults(func=_cmd_extensions)

    trace_p = sub.add_parser(
        "trace",
        help="run one telemetry-enabled session and export its traces",
    )
    trace_p.add_argument(
        "--policy",
        choices=[p.value for p in PolicyName],
        default="adaptive",
    )
    trace_p.add_argument("--drop-ratio", type=float, default=0.2)
    trace_p.add_argument("--duration", type=float, default=25.0)
    trace_p.add_argument("--seed", type=int, default=1)
    trace_p.add_argument(
        "--format",
        choices=["jsonl", "csv"],
        default="jsonl",
        help="export format (default: jsonl)",
    )
    trace_p.add_argument(
        "--series",
        action="append",
        metavar="NAME",
        help="export only this probe series (repeatable; default: all)",
    )
    trace_p.add_argument(
        "--output",
        "-o",
        default=None,
        help="output file (default or '-': stdout)",
    )
    trace_p.add_argument(
        "--list",
        action="store_true",
        help="list recorded series names instead of exporting",
    )
    trace_p.set_defaults(func=_cmd_trace)

    prof_p = sub.add_parser(
        "profile",
        help="profile one pinned session and print the top hotspots",
    )
    prof_p.add_argument(
        "--policy",
        choices=[p.value for p in PolicyName],
        default="adaptive",
    )
    prof_p.add_argument("--drop-ratio", type=float, default=0.2)
    prof_p.add_argument("--duration", type=float, default=25.0)
    prof_p.add_argument("--seed", type=int, default=1)
    prof_p.add_argument(
        "--top",
        type=int,
        default=20,
        help="hotspot rows to report (default: 20)",
    )
    prof_p.add_argument(
        "--sort",
        choices=["tottime", "cumtime"],
        default="tottime",
        help="ranking key (default: tottime)",
    )
    prof_p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    prof_p.add_argument(
        "--output",
        "-o",
        default=None,
        help="output file (default or '-': stdout)",
    )
    prof_p.set_defaults(func=_cmd_profile)

    chaos_p = sub.add_parser(
        "chaos",
        help="run the fault-injection robustness matrix",
    )
    chaos_p.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        choices=sorted(robustness.SCENARIOS),
        help="scenario to include (repeatable; default: "
        f"{', '.join(robustness.DEFAULT_SCENARIOS)})",
    )
    chaos_p.add_argument(
        "--fault",
        action="append",
        dest="faults",
        choices=list(robustness.FAULT_NAMES),
        help="fault schedule to include (repeatable; default: all)",
    )
    chaos_p.add_argument(
        "--policy",
        action="append",
        dest="policies",
        choices=[p.value for p in PolicyName],
        help="policy to include (repeatable; default: "
        f"{', '.join(p.value for p in robustness.DEFAULT_POLICIES)})",
    )
    chaos_p.add_argument("--seeds", type=int, default=2)
    chaos_p.add_argument(
        "--duration", type=float, default=robustness.DURATION
    )
    chaos_p.add_argument(
        "--fault-at",
        type=float,
        default=robustness.FAULT_AT,
        help="when fault windows open (default: "
        f"{robustness.FAULT_AT:g} s)",
    )
    chaos_p.add_argument(
        "--quick",
        action="store_true",
        help="tiny pinned grid (CI smoke): steady scenario, two "
        "faults, adaptive policy, one seed",
    )
    chaos_p.add_argument(
        "--format",
        choices=["table", "json", "csv"],
        default="table",
        help="output format (default: table)",
    )
    chaos_p.add_argument(
        "--output",
        "-o",
        default=None,
        help="output file (default or '-': stdout)",
    )
    chaos_p.add_argument(
        "--list",
        dest="list_faults",
        action="store_true",
        help="list the canonical fault schedules instead of running",
    )
    _add_supervision_flags(chaos_p)
    chaos_p.set_defaults(func=_cmd_chaos)

    fleet_p = sub.add_parser(
        "fleet",
        help="run city-scale SFU fleet population scenarios "
        "(see docs/fleet.md)",
    )
    fleet_p.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        choices=sorted(fleet.SCENARIOS),
        help="population scenario to include (repeatable; default: "
        f"{', '.join(fleet.DEFAULT_SCENARIOS)})",
    )
    fleet_p.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="N",
        help="seeds 1..N per scenario (default: 1)",
    )
    fleet_p.add_argument(
        "--subscribers",
        type=int,
        default=fleet.SUBSCRIBERS,
        help="total subscriber population, split across the two "
        f"regions (default: {fleet.SUBSCRIBERS})",
    )
    fleet_p.add_argument(
        "--duration",
        type=float,
        default=fleet.DURATION,
        help=f"capture duration in seconds (default: {fleet.DURATION:g})",
    )
    fleet_p.add_argument(
        "--quick",
        action="store_true",
        help="tiny pinned grid (CI smoke): steady + "
        "regional_degradation, one seed, 20 subscribers, 8 s",
    )
    fleet_p.add_argument(
        "--format",
        choices=["table", "json", "csv"],
        default="table",
        help="output format (default: table)",
    )
    fleet_p.add_argument(
        "--output",
        "-o",
        default=None,
        help="output file (default or '-': stdout)",
    )
    fleet_p.add_argument(
        "--list",
        dest="list_scenarios",
        action="store_true",
        help="list the population scenarios instead of running",
    )
    _add_supervision_flags(fleet_p)
    fleet_p.set_defaults(func=_cmd_fleet)

    resume_p = sub.add_parser(
        "resume",
        help="continue an interrupted supervised batch from its "
        "run manifest",
    )
    resume_p.add_argument(
        "run_id",
        metavar="RUN_ID_OR_PATH",
        help="run id (under the manifest dir) or manifest file path",
    )
    resume_p.set_defaults(func=None)

    shard_p = sub.add_parser(
        "shard",
        help="plan, execute, and merge sharded sweeps "
        "(see docs/running-fast.md)",
    )
    shard_sub = shard_p.add_subparsers(dest="shard_command", required=True)

    splan_p = shard_sub.add_parser(
        "plan",
        help="partition a grid into K deterministic manifest shards",
    )
    splan_p.add_argument(
        "--grid",
        choices=sorted(shards.GRIDS),
        default="table1",
        help="which grid to shard (default: table1)",
    )
    splan_p.add_argument(
        "--shards",
        type=int,
        required=True,
        metavar="K",
        help="number of shards to stripe the grid over",
    )
    splan_p.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="seeds 1..N per point (default: the grid's canonical set)",
    )
    splan_p.add_argument(
        "--striping",
        choices=list(shards.STRIPING_MODES),
        default="cost",
        help="cell -> shard policy: cost-weighted LPT or plain "
        "round-robin (default: cost)",
    )
    splan_p.add_argument(
        "--ratio",
        dest="ratios",
        action="append",
        type=float,
        metavar="R",
        help="table1/sweep grids: drop ratio to include (repeatable; "
        "default: the canonical five)",
    )
    splan_p.add_argument(
        "--baseline",
        choices=[p.value for p in PolicyName],
        default=None,
        help="table1 grid: baseline policy (default: webrtc)",
    )
    splan_p.add_argument(
        "--drop-ratio",
        type=float,
        default=None,
        help="compare grid: scenario severity (default: 0.2)",
    )
    splan_p.add_argument(
        "--policy",
        dest="policies",
        action="append",
        choices=[p.value for p in PolicyName],
        help="compare/chaos grids: policy to include (repeatable; "
        "default: all / adaptive+webrtc)",
    )
    splan_p.add_argument(
        "--scenario",
        dest="scenarios",
        action="append",
        choices=sorted(set(fleet.SCENARIOS) | set(robustness.SCENARIOS)),
        help="fleet/chaos grids: scenario to include (repeatable; "
        "default: the grid's canonical set)",
    )
    splan_p.add_argument(
        "--subscribers",
        type=int,
        default=None,
        help="fleet grid: total subscriber population "
        f"(default: {fleet.SUBSCRIBERS})",
    )
    splan_p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="fleet/chaos grids: capture duration in seconds "
        f"(defaults: {fleet.DURATION:g} / {robustness.DURATION:g})",
    )
    splan_p.add_argument(
        "--fault",
        dest="faults",
        action="append",
        choices=sorted(robustness.FAULT_NAMES),
        help="chaos grid: fault to include (repeatable; default: all)",
    )
    splan_p.add_argument(
        "--fault-at",
        type=float,
        default=None,
        help="chaos grid: when fault windows open "
        f"(default: {robustness.FAULT_AT:g})",
    )
    splan_p.add_argument(
        "--output",
        "-o",
        default=None,
        help="plan file (default or '-': stdout)",
    )
    splan_p.set_defaults(func=_cmd_shard_plan)

    srun_p = shard_sub.add_parser(
        "run",
        help="execute one shard of a plan with the supervised executor",
    )
    srun_p.add_argument("plan", metavar="PLAN", help="plan file")
    srun_p.add_argument(
        "--index",
        type=int,
        required=True,
        metavar="I",
        help="which shard to execute (0-based)",
    )
    srun_p.add_argument(
        "--out",
        default="shards",
        metavar="DIR",
        help="shard base directory; this shard writes "
        "DIR/shard-NNN/{manifest.json,cache} (default: shards)",
    )
    srun_p.add_argument(
        "--lease-ttl",
        type=float,
        default=shards.DEFAULT_LEASE_TTL,
        metavar="S",
        help="heartbeat-lease TTL in seconds; a worker silent this "
        "long is presumed dead and its cells become stealable "
        f"(default: {shards.DEFAULT_LEASE_TTL:g})",
    )
    srun_p.add_argument(
        "--steal",
        action="store_true",
        help="after finishing this shard, claim and execute "
        "expired-lease cells from dead shards",
    )
    _add_supervision_flags(srun_p)
    srun_p.set_defaults(func=_cmd_shard_run)

    ssteal_p = shard_sub.add_parser(
        "steal",
        help="claim and execute unfinished cells of dead "
        "(expired-lease) shards",
    )
    ssteal_p.add_argument("plan", metavar="PLAN", help="plan file")
    ssteal_p.add_argument(
        "--index",
        type=int,
        required=True,
        metavar="I",
        help="which shard identity to steal as (its manifest and "
        "cache receive the stolen work)",
    )
    ssteal_p.add_argument(
        "--dir",
        default="shards",
        metavar="DIR",
        help="shard base directory (default: shards)",
    )
    ssteal_p.add_argument(
        "--victim",
        dest="victims",
        action="append",
        type=int,
        metavar="V",
        help="steal only from this shard (repeatable; raises if it "
        "still holds a live lease; default: every reclaimable shard)",
    )
    ssteal_p.add_argument(
        "--lease-ttl",
        type=float,
        default=shards.DEFAULT_LEASE_TTL,
        metavar="S",
        help="heartbeat-lease TTL for the stealer's own manifest "
        f"(default: {shards.DEFAULT_LEASE_TTL:g})",
    )
    ssteal_p.add_argument(
        "--grace",
        type=float,
        default=0.0,
        metavar="S",
        help="extra seconds a lease must be expired before its cells "
        "are considered reclaimable (default: 0)",
    )
    _add_supervision_flags(ssteal_p)
    ssteal_p.set_defaults(func=_cmd_shard_steal)

    smerge_p = shard_sub.add_parser(
        "merge",
        help="merge shard manifests/caches into one byte-stable report",
    )
    smerge_p.add_argument("plan", metavar="PLAN", help="plan file")
    smerge_p.add_argument(
        "--dir",
        default="shards",
        metavar="DIR",
        help="shard base directory to merge from (default: shards)",
    )
    smerge_p.add_argument(
        "--out",
        default="merged",
        metavar="DIR",
        help="merged cache + manifest directory (default: merged)",
    )
    smerge_p.add_argument(
        "--format",
        choices=["table", "json", "csv"],
        default="table",
        help="report format (default: table)",
    )
    smerge_p.add_argument(
        "--output",
        "-o",
        default=None,
        help="report file (default or '-': stdout)",
    )
    smerge_p.set_defaults(func=_cmd_shard_merge)

    sstatus_p = shard_sub.add_parser(
        "status",
        help="show per-shard and overall progress of a plan",
    )
    sstatus_p.add_argument("plan", metavar="PLAN", help="plan file")
    sstatus_p.add_argument(
        "--dir",
        default="shards",
        metavar="DIR",
        help="shard base directory to inspect (default: shards)",
    )
    sstatus_p.add_argument(
        "--strict",
        action="store_true",
        help="fail on a corrupt/truncated manifest instead of "
        "reporting its lost cells as pending",
    )
    sstatus_p.set_defaults(func=_cmd_shard_status)

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache"
    )
    cache_p.add_argument(
        "cache_action",
        choices=["info", "clear"],
        nargs="?",
        default="info",
    )
    cache_p.set_defaults(func=_cmd_cache)

    return parser


def _build_supervision(
    args: argparse.Namespace, raw_argv: list[str]
) -> tuple[SupervisorPlan | None, RunManifest | None]:
    """A :class:`SupervisorPlan` when any supervision flag is present.

    Raises:
        ConfigError: on invalid ``--session-timeout``/``--max-retries``.
    """
    timeout = getattr(args, "session_timeout", None)
    retries = getattr(args, "max_retries", None)
    manifest_arg = getattr(args, "manifest", None)
    if timeout is None and retries is None and manifest_arg is None:
        return None, None
    retry = (
        RetryPolicy()
        if retries is None
        else RetryPolicy(max_retries=retries)
    )
    policy = SupervisorPolicy(session_timeout=timeout, retry=retry)
    policy.validate()
    if manifest_arg is not None:
        manifest = RunManifest.create(
            Path(manifest_arg),
            argv=raw_argv,
            command=args.command,
            workers=max(1, args.workers),
            session_timeout=timeout,
            max_retries=retry.max_retries,
        )
    else:
        run_id = new_run_id(raw_argv)
        manifest = RunManifest(
            manifest_dir() / f"{run_id}.json",
            run_id=run_id,
            argv=raw_argv,
            command=args.command,
            workers=max(1, args.workers),
            session_timeout=timeout,
            max_retries=retry.max_retries,
        )
    manifest.save(force=True)
    print(
        f"repro-rtc: run {manifest.run_id} "
        f"(manifest: {manifest.path})",
        file=sys.stderr,
    )
    print(
        f"repro-rtc: resume with: repro-rtc resume {manifest.path}",
        file=sys.stderr,
    )
    return SupervisorPlan(policy=policy, manifest=manifest), manifest


def _resume(run_id_or_path: str) -> int:
    """Replay the command line recorded in a run manifest.

    Finished cells are served by the result cache; only unfinished
    cells re-execute. Raises :class:`ConfigError` when the manifest is
    missing, unreadable, or itself records a ``resume`` invocation.
    """
    path = find_manifest(run_id_or_path)
    manifest = RunManifest.load(path)
    argv = list(manifest.argv)
    if not argv:
        raise ConfigError(
            f"run manifest {path} records no command line to replay"
        )
    if "resume" in argv:
        raise ConfigError(
            f"run manifest {path} records a 'resume' invocation; "
            "refusing to recurse"
        )
    if "--manifest" not in argv:
        argv += ["--manifest", str(path)]
    counts = manifest.counts()
    done = counts.get("ok", 0)
    total = len(manifest.records)
    print(
        f"repro-rtc: resuming run {manifest.run_id} "
        f"({done}/{total} cells finished)",
        file=sys.stderr,
    )
    return main(argv)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    parser = build_parser()
    args = parser.parse_args(raw_argv)
    if getattr(args, "kernel", None) and args.kernel != "auto":
        # Sessions resolve "auto" through REPRO_KERNEL, and worker
        # processes inherit the environment — one assignment covers
        # serial and parallel paths alike.
        os.environ[KERNEL_ENV_VAR] = args.kernel
    if args.command == "resume":
        try:
            return _resume(args.run_id)
        except ConfigError as exc:
            print(f"repro-rtc: error: {exc}", file=sys.stderr)
            return EXIT_USAGE
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or ResultCache.default_dir())
        try:
            cache.ensure_writable()
        except ConfigError as exc:
            print(f"repro-rtc: error: {exc}", file=sys.stderr)
            print(
                "repro-rtc: hint: pass --cache-dir WRITABLE_PATH or "
                "--no-cache",
                file=sys.stderr,
            )
            return EXIT_USAGE
    try:
        if args.command == "shard":
            # Shard runs own their supervision: the manifest and cache
            # live in the shard directory (the plan decides where), so
            # the generic flag handling must not mint a second
            # manifest. ``shard run`` reads the supervision flags
            # itself; the recorded argv makes ``resume`` replay work.
            args.raw_argv = raw_argv
            plan, manifest = None, None
        else:
            plan, manifest = _build_supervision(args, raw_argv)
    except ConfigError as exc:
        print(f"repro-rtc: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    configure(workers=max(1, args.workers), cache=cache, supervisor=plan)
    try:
        code = args.func(args)
    except KeyboardInterrupt:
        # The supervisor already sealed the manifest mid-batch; this
        # covers interrupts that land outside a batch.
        if manifest is not None:
            if manifest.status == "running":
                manifest.finish(
                    "interrupted",
                    plan.stats.to_counters() if plan else {},
                )
            print(
                f"repro-rtc: interrupted; resume with: "
                f"repro-rtc resume {manifest.path}",
                file=sys.stderr,
            )
        else:
            print("repro-rtc: interrupted", file=sys.stderr)
        return EXIT_INTERRUPT
    except ConfigError as exc:
        print(f"repro-rtc: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        configure(supervisor=None)
    if code == EXIT_OK and plan is not None and plan.stats.quarantined:
        for name, value in sorted(plan.stats.to_counters().items()):
            print(f"repro-rtc: {name} = {value}", file=sys.stderr)
        print(
            f"repro-rtc: {plan.stats.quarantined} session(s) "
            "quarantined; output contains FAILED(...) markers",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    return code


if __name__ == "__main__":
    sys.exit(main())
